package core

import (
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// preparation is the Preparation compartment (§3.2): it starts the ordering
// of client batches. On the primary it authenticates client requests,
// assigns sequence numbers and emits PrePrepares (event handler 1); on
// backups it validates PrePrepares and emits Prepares (2). It also handles
// ViewChanges (6) and creates/validates NewViews (7), plus the duplicated
// checkpoint handlers (9, 7').
type preparation struct {
	comState
	macs *crypto.MACStore
	// counter is the trusted monotonic counter enclave (trusted consensus
	// mode only, nil in classic). The primary binds every PrePrepare to the
	// next counter value; because the counter and the sequence space advance
	// in lockstep, backups can verify gap-freeness with the affine law
	// CtrVal = ctrBase + (Seq - seqBase) alone.
	counter *tee.TrustedCounter

	// Read-lease issuance (primary duty, ReadLeases deployments). Leases
	// piggyback on proposal and checkpoint traffic and renew on the
	// failure-detector tick, so holders stay leased on idle clusters too.
	leases    bool
	leaseTTL  time.Duration
	clock     *SkewClock
	lastGrant time.Time
	// lastGrantProbe records whether the last grant round was probe-only,
	// so the first quorum of acks can trigger an immediate real round
	// instead of waiting out the renewal throttle.
	lastGrantProbe bool
	// lastExpiry is the highest expiry this primary has granted; acks
	// echoing anything above it are forgeries (or cross-primary confusion)
	// and are dropped.
	lastExpiry int64
	// ackExpiry tracks, per holder, the highest grant-round expiry the
	// holder has acknowledged. A holder counts as reachable while its entry
	// lies in the future; real (servable) grants require a quorum of
	// reachable holders, so a primary cut off with fewer than 2f+1 peers
	// degrades to probe grants within one TTL and its holders' leases die.
	// Reset on every view install — a new view's primary proves
	// reachability afresh.
	ackExpiry map[uint32]int64
	// leaseFence delays this primary's first fresh proposal after a view
	// change until every lease the previous primary could have kept alive
	// has expired (2.5×TTL: the last real grant could have been issued up
	// to one TTL after the view change began, lives one TTL, plus half a
	// TTL for clock skew and delivery slack). Re-issued NewView proposals
	// are exempt — they were proposed, and covered by read-index frontiers,
	// in earlier views.
	leaseFence time.Time
	// fenced parks batches that arrived during the fence; the lease tick
	// flushes them the moment the fence passes, so post-view-change writes
	// pay the fence as pure latency instead of depending on client
	// retransmission (which races the failure detector into another view
	// change). Bounded — overflow drops, and retransmission covers.
	fenced []*messages.Batch

	nextSeq uint64
	// proposals records the accepted proposal digest per (view, seq): the
	// compartment's slice of the input log. Its presence also marks that a
	// Prepare was already sent for the slot.
	proposals map[uint64]map[uint64]crypto.Digest
	// viewChanges collects ViewChange votes for the new-primary duty.
	viewChanges map[uint64]map[uint32]*messages.ViewChange
	// lastNewView is the NewView this compartment emitted as the new
	// primary, kept for retransmission to stragglers.
	lastNewView *messages.NewView
}

func newPreparation(cfg Config, ver *messages.Verifier, counter *tee.TrustedCounter) *preparation {
	return &preparation{
		comState: newComState(cfg.N, cfg.F, cfg.ID, cfg.WatermarkWindow, ver),
		macs: crypto.NewMACStore(cfg.MACSecret,
			crypto.Identity{ReplicaID: cfg.ID, Role: crypto.RolePreparation}),
		counter:     counter,
		leases:      cfg.ReadLeases,
		leaseTTL:    cfg.LeaseTTL,
		clock:       cfg.Clock,
		ackExpiry:   make(map[uint32]int64),
		proposals:   make(map[uint64]map[uint64]crypto.Digest),
		viewChanges: make(map[uint64]map[uint32]*messages.ViewChange),
	}
}

// Measurement implements tee.Code.
func (p *preparation) Measurement() crypto.Digest { return measPreparation }

// Preprocess implements tee.Preprocessor: signature verification for a
// batched ecall runs on the worker pool, warming the verify cache the
// serial handlers then hit.
func (p *preparation) Preprocess(_ tee.Host, raw []byte) { prevalidate(p.ver, raw) }

// HandleECall implements tee.Code.
func (p *preparation) HandleECall(host tee.Host, raw []byte) []tee.OutMsg {
	if len(raw) == 0 {
		return nil
	}
	switch raw[0] {
	case ecallBatch:
		batch, err := messages.UnmarshalBatch(raw[1:])
		if err != nil {
			return nil
		}
		return p.onBatch(host, batch)
	case ecallTick:
		// Lease-clock tick (read-lease deployments only): renew the
		// outstanding read leases even when no proposal or checkpoint
		// traffic would carry a grant, and flush any batches the write
		// fence parked. Ticks are never persisted.
		return append(p.flushFenced(host), p.maybeGrantLeases()...)
	case ecallMessage:
		m, err := messages.Unmarshal(raw[1:])
		if err != nil {
			return nil
		}
		switch msg := m.(type) {
		case *messages.PrePrepare:
			return p.onPrePrepare(host, msg)
		case *messages.ViewChange:
			return p.onViewChange(host, msg)
		case *messages.NewView:
			return p.onNewView(host, msg)
		case *messages.Checkpoint:
			p.onCheckpointGC(host, msg)
			// Checkpoint traffic is the second piggyback carrier for lease
			// renewal (proposals being the first).
			return p.maybeGrantLeases()
		case *messages.LeaseAck:
			return p.onLeaseAck(msg)
		case *messages.ReadIndex:
			return p.onReadIndex(host, msg)
		}
	}
	return nil
}

// maybeGrantLeases issues or renews read leases for every replica when
// this compartment is the primary of the current view and the renewal
// period (a quarter of the TTL) has elapsed. Each grant is signed by the
// trusted counter enclave. Grants are probe-only — acknowledged by the
// holders but never installed — until a quorum of holders has fresh
// LeaseAcks on file: servable leases are issued exclusively by a primary
// that can prove it is not isolated with a minority, which is what keeps a
// deposed primary in a partition from renewing its holders' leases
// forever. Returns nil in non-lease deployments and on backups.
func (p *preparation) maybeGrantLeases() []tee.OutMsg {
	if !p.leases || p.counter == nil || p.primary(p.view) != p.id {
		return nil
	}
	now := p.clock.Now()
	if !p.lastGrant.IsZero() && now.Sub(p.lastGrant) < p.leaseTTL/4 {
		return nil
	}
	probe := !p.acksFresh(now)
	p.lastGrant = now
	p.lastGrantProbe = probe
	expiry := now.Add(p.leaseTTL).UnixNano()
	if expiry <= p.lastExpiry {
		expiry = p.lastExpiry + 1 // expiry doubles as the ack-round nonce
	}
	p.lastExpiry = expiry
	out := make([]tee.OutMsg, 0, p.n)
	for holder := uint32(0); int(holder) < p.n; holder++ {
		att := p.counter.GrantLease(holder, p.view, p.nextSeq, expiry, probe)
		g := &messages.LeaseGrant{
			Granter:   att.Granter,
			Holder:    att.Holder,
			View:      att.View,
			AnchorSeq: att.AnchorSeq,
			CtrVal:    att.CtrVal,
			Expiry:    att.Expiry,
			Probe:     att.Probe,
			Sig:       att.Sig,
		}
		if holder == p.id {
			out = append(out, localOut(crypto.RoleExecution, g))
		} else {
			out = append(out, replicaOut(holder, g))
		}
	}
	return out
}

// acksFresh reports whether a quorum of holders has acknowledged a grant
// round whose expiry still lies in the future — the reachability proof
// that authorizes real (servable) grants.
func (p *preparation) acksFresh(now time.Time) bool {
	ns := now.UnixNano()
	fresh := 0
	for _, exp := range p.ackExpiry {
		if exp > ns {
			fresh++
		}
	}
	return fresh >= p.quorum()
}

// onLeaseAck records a holder's acknowledgement of a grant round. The
// echoed expiry is the round nonce: only acks for rounds this primary
// actually issued count, each holder's record is monotonic (replays can
// never refresh it), and freshness is re-derived against the clock at
// grant time. When the quorum first forms right after a probe round, a
// real round goes out immediately so the fast path arms without waiting
// out the renewal throttle.
func (p *preparation) onLeaseAck(a *messages.LeaseAck) []tee.OutMsg {
	if !p.leases || p.primary(p.view) != p.id {
		return nil
	}
	if a.View != p.view || a.Expiry > p.lastExpiry {
		return nil
	}
	if err := p.ver.VerifyLeaseAck(a); err != nil {
		return nil
	}
	if a.Expiry <= p.ackExpiry[a.Holder] {
		return nil // stale or replayed ack
	}
	p.ackExpiry[a.Holder] = a.Expiry
	if p.lastGrantProbe && p.acksFresh(p.clock.Now()) {
		p.lastGrant = time.Time{} // bypass the throttle for the arming round
		return p.maybeGrantLeases()
	}
	return nil
}

// onReadIndex answers a holder's read-index query with this primary's
// proposal frontier — the highest sequence number it has assigned. Every
// write acknowledged to a client before the query was sent has committed,
// hence was proposed, hence sits at or below the frontier; a holder that
// has applied the frontier therefore observes it. Queries for other views
// (or arriving at a backup) are dropped silently: the holder's read falls
// back to the agreement path. The frontier check needs no extra fence —
// this compartment's nextSeq is installed at or above every re-issued slot
// on view entry, so the bound survives primary turnover.
func (p *preparation) onReadIndex(host tee.Host, ri *messages.ReadIndex) []tee.OutMsg {
	if !p.leases || p.primary(p.view) != p.id || ri.View != p.view {
		return nil
	}
	if err := p.ver.VerifyReadIndex(ri); err != nil {
		return nil
	}
	rep := &messages.ReadIndexReply{
		Replica:  p.id,
		View:     p.view,
		Epoch:    ri.Epoch,
		Frontier: p.nextSeq,
	}
	rep.Sig, rep.Auth = p.authenticate(host, messages.TReadIndexReply, rep.SigningBytes())
	if ri.Holder == p.id {
		return []tee.OutMsg{localOut(crypto.RoleExecution, rep)}
	}
	return []tee.OutMsg{replicaOut(ri.Holder, rep)}
}

// record stores an accepted proposal digest, reporting false on conflict
// (equivocation) or duplication.
func (p *preparation) record(view, seq uint64, d crypto.Digest) bool {
	vs, ok := p.proposals[view]
	if !ok {
		vs = make(map[uint64]crypto.Digest)
		p.proposals[view] = vs
	}
	if _, exists := vs[seq]; exists {
		return false
	}
	vs[seq] = d
	return true
}

// fencedBatchMax bounds the fence parking buffer; batches past it are
// dropped and re-collected from client retransmissions.
const fencedBatchMax = 128

// onBatch is event handler (1): the primary authenticates a client batch
// from the environment, assigns the next sequence number and emits the
// PrePrepare — to the network and into the local Confirmation and Execution
// compartments (the duplicated input logs of §3.2).
func (p *preparation) onBatch(host tee.Host, batch *messages.Batch) []tee.OutMsg {
	if p.primary(p.view) != p.id {
		return nil // the environment misjudged the view; liveness only
	}
	if p.leases && !p.leaseFence.IsZero() && p.clock.Now().Before(p.leaseFence) {
		// Write fence after a view change: no fresh proposal may be
		// assigned while a lease the deposed primary issued could still be
		// alive somewhere — a partitioned holder could serve a read missing
		// a write this view already acked. Park the batch; the lease tick
		// flushes it the moment the fence passes.
		if len(p.fenced) < fencedBatchMax {
			b := *batch
			p.fenced = append(p.fenced, &b)
		}
		return nil
	}
	return append(p.flushFenced(host), p.proposeBatch(host, batch)...)
}

// flushFenced proposes the batches the write fence parked, once it has
// passed. Ordering across the fence is preserved (parked batches flush
// before any new one), and duplicate requests from overlapping client
// retransmissions are harmless — the Execution compartments' exactly-once
// bookkeeping answers them from the reply cache.
func (p *preparation) flushFenced(host tee.Host) []tee.OutMsg {
	if len(p.fenced) == 0 {
		return nil
	}
	if p.primary(p.view) != p.id {
		p.fenced = nil // deposed while fenced: the next primary re-collects
		return nil
	}
	if p.leases && !p.leaseFence.IsZero() && p.clock.Now().Before(p.leaseFence) {
		return nil
	}
	batches := p.fenced
	p.fenced = nil
	var out []tee.OutMsg
	for _, b := range batches {
		out = append(out, p.proposeBatch(host, b)...)
	}
	return out
}

// proposeBatch authenticates a client batch, assigns the next sequence
// number and emits the PrePrepare.
func (p *preparation) proposeBatch(host tee.Host, batch *messages.Batch) []tee.OutMsg {
	valid := batch.Requests[:0]
	enc := messages.GetEncoder()
	for i := range batch.Requests {
		req := &batch.Requests[i]
		client := crypto.Identity{ReplicaID: req.ClientID, Role: crypto.RoleClient}
		enc.Reset()
		req.AppendAuthenticated(enc)
		if err := p.macs.VerifyIndexed(enc.Bytes(), req.Auth, int(p.id), client); err != nil {
			continue // unauthenticated request: drop from the batch
		}
		valid = append(valid, *req)
	}
	messages.PutEncoder(enc)
	if len(valid) == 0 {
		return nil
	}
	if !p.inWindow(p.nextSeq + 1) {
		return nil // window exhausted; the environment will resubmit
	}
	p.nextSeq++
	b := messages.Batch{Requests: valid}
	pp := &messages.PrePrepare{
		View:    p.view,
		Seq:     p.nextSeq,
		Digest:  b.Digest(),
		Replica: p.id,
		Batch:   b,
	}
	pp.Sig, pp.Auth = p.authenticate(host, messages.TPrePrepare, pp.SigningBytes())
	if p.trustedMode() {
		// Bind the proposal to the next counter value. nextSeq and the
		// counter advance in lockstep from the view's bases, so the
		// attestation lands exactly on ctrBase + (Seq - seqBase) — the
		// affine law backups enforce in place of the Prepare phase.
		att := p.counter.CreateAttestation(messages.CounterDigest(pp))
		pp.CtrVal, pp.CtrSig = att.Value, att.Sig
	}
	p.record(pp.View, pp.Seq, pp.Digest)
	out := []tee.OutMsg{
		broadcastOut(pp),
		localOut(crypto.RoleConfirmation, pp),
		localOut(crypto.RoleExecution, pp),
	}
	// Piggyback lease renewal on proposal traffic: under load the leases
	// ride along for free and the anchor tracks the write frontier.
	return append(out, p.maybeGrantLeases()...)
}

// onPrePrepare is event handler (2): a backup validates the primary's
// proposal and emits its Prepare.
func (p *preparation) onPrePrepare(host tee.Host, pp *messages.PrePrepare) []tee.OutMsg {
	if pp.View != p.view || !p.inWindow(pp.Seq) {
		return nil
	}
	if p.primary(p.view) == p.id {
		return nil // the primary ignores foreign proposals in its view
	}
	if err := p.ver.VerifyPrePrepare(pp, true); err != nil {
		return nil
	}
	if p.trustedMode() {
		// Trusted consensus: a counter-valid proposal needs no Prepare —
		// the attestation plus the affine law is the whole vote. Record it
		// (the input-log slice still feeds equivocation detection) and stop;
		// the Confirmation compartment commits directly off its copy.
		if err := p.ver.VerifyCounterAt(pp, p.ctrBase, p.seqBase); err != nil {
			return nil
		}
		p.record(pp.View, pp.Seq, pp.Digest)
		return nil
	}
	if !p.record(pp.View, pp.Seq, pp.Digest) {
		return nil // duplicate or equivocation: prepare only once
	}
	prep := &messages.Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: p.id}
	prep.Sig, prep.Auth = p.authenticate(host, messages.TPrepare, prep.SigningBytes())
	return []tee.OutMsg{
		broadcastOut(prep),
		localOut(crypto.RoleConfirmation, prep),
	}
}

// onViewChange is event handler (6): the Preparation compartment of the new
// primary collects 2f+1 ViewChanges and emits the NewView.
func (p *preparation) onViewChange(host tee.Host, vc *messages.ViewChange) []tee.OutMsg {
	if vc.NewViewNum <= p.view {
		// A straggler still asking for a view we installed: if we are its
		// primary, retransmit the NewView (it may have been lost).
		if p.primary(p.view) == p.id && p.lastNewView != nil &&
			p.lastNewView.View == p.view && int(vc.Replica) < p.n && vc.Replica != p.id {
			return []tee.OutMsg{replicaOut(vc.Replica, p.lastNewView)}
		}
		return nil
	}
	if err := p.ver.VerifyViewChange(vc); err != nil {
		return nil
	}
	set, ok := p.viewChanges[vc.NewViewNum]
	if !ok {
		set = make(map[uint32]*messages.ViewChange)
		p.viewChanges[vc.NewViewNum] = set
	}
	if _, dup := set[vc.Replica]; dup {
		return nil
	}
	set[vc.Replica] = vc
	if p.primary(vc.NewViewNum) != p.id || len(set) < p.quorum() {
		return nil
	}
	// Become the primary of the new view.
	vcs := make([]messages.ViewChange, 0, p.quorum())
	for _, v := range set {
		vcs = append(vcs, *v)
		if len(vcs) == p.quorum() {
			break
		}
	}
	// In MAC mode the re-issued PrePrepares carry no authenticators of
	// their own: they travel only inside the NewView, whose Ed25519
	// signature (same signing compartment) covers them.
	var sign messages.NewViewSigner
	if !p.macMode() {
		sign = host.Sign
	}
	stable, pps := messages.ComputeNewViewPrePrepares(vc.NewViewNum, p.id, vcs, sign)
	var ctrBase uint64
	if p.trustedMode() {
		// Attest the re-issues with fresh counter values. CtrBase is the
		// counter position before attesting; the re-issues (contiguous from
		// Stable.Seq+1 by construction) consume CtrBase+1..CtrBase+k in
		// sequence order, and every later proposal of the view continues
		// the same affine law. The counter cannot re-sign old values, so a
		// valid NewView proves the new leader neither reuses nor skips
		// slots. CtrBase is covered by nv.Sig below.
		ctrBase = p.counter.Value()
		for i := range pps {
			att := p.counter.CreateAttestation(messages.CounterDigest(&pps[i]))
			pps[i].CtrVal, pps[i].CtrSig = att.Value, att.Sig
		}
	}
	nv := &messages.NewView{
		View:        vc.NewViewNum,
		ViewChanges: vcs,
		Stable:      stable,
		PrePrepares: pps,
		Replica:     p.id,
		CtrBase:     ctrBase,
	}
	nv.Sig = host.Sign(nv.SigningBytes())
	p.lastNewView = nv
	p.installView(nv.View, stable, pps, ctrBase)
	delete(p.viewChanges, vc.NewViewNum)
	out := []tee.OutMsg{
		broadcastOut(nv),
		localOut(crypto.RoleConfirmation, nv),
		localOut(crypto.RoleExecution, nv),
	}
	// The new primary re-leases the group immediately: every lease from
	// the previous view is dead on arrival at any correct Execution
	// compartment (the view number no longer matches), so fresh grants are
	// what bring the read fast path back after a view change.
	return append(out, p.maybeGrantLeases()...)
}

// onNewView is event handler (7): backups fully validate the NewView —
// including recomputing the re-issued PrePrepares from the embedded
// ViewChanges, the complex logic the paper notes is repeated here — and
// prepare the re-issued slots.
func (p *preparation) onNewView(host tee.Host, nv *messages.NewView) []tee.OutMsg {
	if nv.View < p.view {
		return nil
	}
	if err := p.ver.VerifyNewView(nv); err != nil {
		return nil
	}
	p.installView(nv.View, nv.Stable, nv.PrePrepares, nv.CtrBase)
	var out []tee.OutMsg
	if p.primary(nv.View) != p.id {
		for i := range nv.PrePrepares {
			pp := &nv.PrePrepares[i]
			if pp.Seq <= p.lowWatermark || !p.record(pp.View, pp.Seq, pp.Digest) {
				continue
			}
			if p.trustedMode() {
				continue // counter-attested re-issues need no Prepare votes
			}
			prep := &messages.Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: p.id}
			prep.Sig, prep.Auth = p.authenticate(host, messages.TPrepare, prep.SigningBytes())
			out = append(out, broadcastOut(prep), localOut(crypto.RoleConfirmation, prep))
		}
	}
	return out
}

// installView moves the compartment into a new view.
func (p *preparation) installView(view uint64, stable messages.CheckpointCert, pps []messages.PrePrepare, ctrBase uint64) {
	p.view = view
	p.lastGrant = time.Time{} // a new view's primary leases afresh, at once
	// Reachability must be proven anew under the new view: old acks echo
	// grant rounds of a dead primary.
	p.ackExpiry = make(map[uint32]int64)
	p.lastExpiry = 0
	p.lastGrantProbe = false
	if p.leases && view > 0 {
		p.leaseFence = p.clock.Now().Add(2*p.leaseTTL + p.leaseTTL/2)
	}
	p.fenced = nil // parked batches re-arrive via client retransmission
	p.advanceStable(stable)
	if p.trustedMode() {
		// Re-pin the affine counter law: proposals of the new view consume
		// ctrBase+1.. sequence-aligned at the stable checkpoint.
		p.ctrBase, p.seqBase = ctrBase, stable.Seq
	}
	maxSeq := p.lowWatermark
	for i := range pps {
		if pps[i].Seq > maxSeq {
			maxSeq = pps[i].Seq
		}
		if p.primary(view) == p.id {
			p.record(pps[i].View, pps[i].Seq, pps[i].Digest)
		}
	}
	if maxSeq > p.nextSeq {
		p.nextSeq = maxSeq
	}
	if p.nextSeq < p.lowWatermark {
		p.nextSeq = p.lowWatermark
	}
	p.gc()
	for target := range p.viewChanges {
		if target <= view {
			delete(p.viewChanges, target)
		}
	}
}

// onCheckpointGC is the duplicated checkpoint handler (9).
func (p *preparation) onCheckpointGC(host tee.Host, c *messages.Checkpoint) {
	cert := p.onCheckpoint(host, c)
	if cert == nil {
		return
	}
	if p.advanceStable(*cert) {
		if p.nextSeq < p.lowWatermark {
			p.nextSeq = p.lowWatermark
		}
		p.gc()
	}
}

// gc prunes proposals at or below the watermark.
func (p *preparation) gc() {
	for view, vs := range p.proposals {
		for seq := range vs {
			if seq <= p.lowWatermark {
				delete(vs, seq)
			}
		}
		if len(vs) == 0 {
			delete(p.proposals, view)
		}
	}
}
