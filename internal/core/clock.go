package core

import (
	"sync/atomic"
	"time"
)

// SkewClock is the lease-path time source: real time plus an adjustable
// offset. The protocol's lease safety argument assumes bounded clock skew
// between granter and holders; chaos testing injects skew here — per
// replica — to probe that bound. A nil *SkewClock reads real time, so the
// hook is free when unused.
//
// Only the lease machinery (grant freshness, holder-side validity, the
// new-primary write fence) consults this clock: it is where absolute time
// carries safety weight. Failure-detector and batching timers deliberately
// keep reading real time — skewing those models nothing the timeout
// configuration doesn't already cover.
type SkewClock struct {
	off atomic.Int64 // nanoseconds added to real time
}

// Now returns the possibly-skewed current time.
func (c *SkewClock) Now() time.Time {
	if c == nil {
		return time.Now()
	}
	return time.Now().Add(time.Duration(c.off.Load()))
}

// SetSkew replaces the clock's offset.
func (c *SkewClock) SetSkew(d time.Duration) { c.off.Store(int64(d)) }

// Skew returns the current offset.
func (c *SkewClock) Skew() time.Duration { return time.Duration(c.off.Load()) }
