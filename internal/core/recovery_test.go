package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

// withPersistence gives every replica a durability directory under root
// and the deterministic key seed recovery depends on. Synchronous fsync
// keeps the tests deterministic: a simulated crash then loses nothing
// locally, so what the assertions exercise is the recovery path itself.
func withPersistence(root string, seed []byte) clusterOpt {
	return func(cfg *Config) {
		cfg.KeySeed = seed
		cfg.DataDir = filepath.Join(root, fmt.Sprintf("r%d", cfg.ID))
		cfg.FsyncInterval = -1
		cfg.CheckpointInterval = 4
	}
}

func TestReplicaRecoversAfterCrashRestart(t *testing.T) {
	root := t.TempDir()
	seed := []byte("core-recovery-seed")
	c := newCluster(t, false, withPersistence(root, seed))
	cl := c.client(100)

	put := func(i int) {
		t.Helper()
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		put(i)
	}
	waitFor(t, 5*time.Second, "replica 3 catches up pre-crash", func() bool {
		return c.kvs[3].Digest() == c.kvs[0].Digest()
	})

	// SIGKILL replica 3 and keep the protocol running without it.
	c.replicas[3].Crash()
	for i := 10; i < 16; i++ {
		put(i)
	}

	// Restart: a fresh Replica over the same data directory recovers from
	// the sealed snapshot plus WAL replay, then closes the gap (ops 10–15)
	// through the peers' checkpoints and state transfer.
	r2, err := NewReplica(c.replicas[3].cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(r2.Stop)
	rs := r2.Recovery()
	if rs.Snapshots == 0 {
		t.Fatal("recovery restored no sealed snapshots (checkpoints were reached pre-crash)")
	}
	if rs.WALRecords == 0 {
		t.Fatal("recovery replayed no WAL records")
	}
	conn, err := c.net.Join(transport.ReplicaEndpoint(3), r2.Handler())
	if err != nil {
		t.Fatal(err)
	}
	r2.Start(conn)

	for i := 16; i < 26; i++ {
		put(i)
	}
	waitFor(t, 10*time.Second, "restarted replica converges", func() bool {
		return c.kvs[3].Digest() == c.kvs[0].Digest()
	})
	// Byte-identical state, not just matching digests.
	if !bytes.Equal(c.kvs[3].Snapshot(), c.kvs[0].Snapshot()) {
		t.Fatal("recovered replica state differs from the group")
	}
}

// TestSealedStateWrongIdentityRefused: a sealed compartment snapshot can
// only be opened by an enclave with the same identity key stream. Another
// replica's enclave — or an attacker without the seed — gets an AEAD
// failure, never a partial import.
func TestSealedStateWrongIdentityRefused(t *testing.T) {
	seed := []byte("seal-identity-seed")
	reg := crypto.NewRegistry()
	ver, err := messages.NewVerifier(4, 1, reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id uint32) *tee.Enclave {
		cfg := Config{N: 4, F: 1, ID: id, Registry: reg,
			MACSecret: seed, KeySeed: seed, App: app.NewKVS()}
		cfg = cfg.withDefaults()
		enc, err := tee.NewEnclaveWithRand(id, crypto.RoleExecution,
			newExecution(cfg, ver), tee.ZeroCostModel(),
			enclaveKeyStream(seed, id, crypto.RoleExecution))
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	sealed, err := mk(0).SealState()
	if err != nil {
		t.Fatal(err)
	}
	// Same identity (re-derived keys, as after a restart): accepted.
	if err := mk(0).UnsealState(sealed); err != nil {
		t.Fatalf("re-derived identity could not unseal its own state: %v", err)
	}
	// Different replica identity: refused.
	if err := mk(1).UnsealState(sealed); err == nil {
		t.Fatal("a different enclave identity unsealed foreign state")
	}
	// Tampered blob: refused.
	sealed[len(sealed)/2] ^= 0xff
	if err := mk(0).UnsealState(sealed); err == nil {
		t.Fatal("tampered sealed state accepted")
	}
}

func TestPersistenceRequiresKeySeed(t *testing.T) {
	cfg := Config{
		N: 4, F: 1, ID: 0,
		Registry:  crypto.NewRegistry(),
		MACSecret: []byte("secret"),
		App:       app.NewKVS(),
		DataDir:   t.TempDir(),
	}
	if _, err := NewReplica(cfg); err == nil {
		t.Fatal("DataDir without KeySeed accepted — sealed state would be unrecoverable")
	}
}

// TestFinishRecoveryRearmsBatchFetch: WAL replay discards enclave
// outputs, so a BatchFetch fired during replay went nowhere — recovery
// must reset the stall detector so the live one re-fires cleanly.
func TestFinishRecoveryRearmsBatchFetch(t *testing.T) {
	cfg := Config{N: 4, F: 1, ID: 3, Registry: crypto.NewRegistry(),
		MACSecret: []byte("s"), App: app.NewKVS()}
	cfg = cfg.withDefaults()
	ver, err := messages.NewVerifier(cfg.N, cfg.F, cfg.Registry, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	e := newExecution(cfg, ver)
	e.stallSeq = 7 // as if replay left execution mid-stall
	e.stallTicks = missingBodyFetchAfter - 1
	e.finishRecovery()
	if e.stallSeq != 0 || e.stallTicks != 0 {
		t.Fatalf("recovery left the stall detector armed: stallSeq=%d ticks=%d",
			e.stallSeq, e.stallTicks)
	}
	if out := e.fetchBody(7, crypto.HashData([]byte("d"))); len(out) != 1 {
		t.Fatal("fetchBody suppressed after recovery")
	}
}

// TestCompartmentStateExportRoundTrip drives a slice of protocol traffic
// through an execution compartment, exports its state, imports it into a
// fresh instance and checks the observable state matches.
func TestCompartmentStateExportRoundTrip(t *testing.T) {
	h := newHarness(t)
	secret := []byte("compartment-test")
	exec := h.enclave(3, crypto.RoleExecution)

	req := testRequest(secret, h.n, 7, 1, app.EncodePut("k", []byte("v")))
	b := messages.Batch{Requests: []messages.Request{req}}
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())
	_, _ = exec.Invoke(wrapMessage(messages.Marshal(pp)))
	for r := uint32(0); r < 3; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		_, _ = exec.Invoke(wrapMessage(messages.Marshal(c)))
	}
	if _, ok := h.apps[3].Get("k"); !ok {
		t.Fatal("setup: request did not execute")
	}

	sealed, err := exec.SealState()
	if err != nil {
		t.Fatal(err)
	}
	// Import into a fresh compartment of the same identity.
	kvs2 := app.NewKVS()
	cfg := h.cfgs[3]
	cfg.App = kvs2
	ver, err := messages.NewVerifier(h.n, h.f, h.reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	code2 := newExecution(cfg, ver)
	enc2, err := tee.NewEnclave(3, crypto.RoleExecution, code2, tee.ZeroCostModel())
	if err != nil {
		t.Fatal(err)
	}
	_ = enc2
	// Unseal through the durable hooks directly: enc2 has a different
	// random sealing key, so unseal the blob with the original enclave and
	// import the plaintext.
	pt, err := exec.Unseal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if err := code2.ImportState(pt); err != nil {
		t.Fatal(err)
	}
	if v, ok := kvs2.Get("k"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("application state did not survive the export round trip")
	}
	if code2.lastExec != 1 {
		t.Fatalf("lastExec = %d after import, want 1", code2.lastExec)
	}
	// The exactly-once cache survived: re-delivering the commits must not
	// re-execute (lastExec already covers seq 1).
	if !bytes.Equal(kvs2.Snapshot(), h.apps[3].Snapshot()) {
		t.Fatal("imported state is not byte-identical to the exported one")
	}
}
