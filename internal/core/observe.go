package core

import (
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/obs"
)

// compartmentRoles is the fixed emission order for per-compartment series;
// it matches the construction order of r.vers and r.caches in NewReplica.
var compartmentRoles = [3]crypto.Role{crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution}

// EventStats are the protocol-event counters the untrusted environment
// tracks outside the enclaves (the obs registry exposes them as series;
// this struct is the programmatic view).
type EventStats struct {
	// ViewChanges counts advances of this replica's view estimate —
	// observed NewView messages and its own suspicion-driven bumps.
	ViewChanges uint64
	// LeaseRefusals counts linearizable reads the Execution compartment
	// refused to serve locally (expired/absent lease, stale frontier) —
	// each one fell back to the agreement or read-index path.
	LeaseRefusals uint64
	// ReadIndexes counts read-index confirmation rounds this replica
	// started as lease holder.
	ReadIndexes uint64
	// StallFetches counts checkpoint-stall body fetches: a compartment
	// held a certificate without the batch body and had to ask peers.
	StallFetches uint64
	// ProbesSent and ProbesAnswered count state-transfer probes, both
	// directions.
	ProbesSent     uint64
	ProbesAnswered uint64
}

// Events returns the untrusted-side protocol-event counters.
func (r *Replica) Events() EventStats {
	return EventStats{
		ViewChanges:    r.broker.mViewChanges.Load(),
		LeaseRefusals:  r.execCode.evLeaseRefusals.Load(),
		ReadIndexes:    r.execCode.evReadIndexes.Load(),
		StallFetches:   r.execCode.evStallFetches.Load(),
		ProbesSent:     r.execCode.evProbesSent.Load(),
		ProbesAnswered: r.execCode.evProbesAnswered.Load(),
	}
}

// ViewChanges returns how many times this replica's view estimate
// advanced (observed NewView or own suspicion).
func (r *Replica) ViewChanges() uint64 { return r.broker.mViewChanges.Load() }

// compartmentName is the full paper name of a compartment's role, used as
// the metrics label and healthz key; Role.String() is the short wire form.
func compartmentName(role crypto.Role) string {
	switch role {
	case crypto.RolePreparation:
		return "preparation"
	case crypto.RoleConfirmation:
		return "confirmation"
	case crypto.RoleExecution:
		return "execution"
	}
	return role.String()
}

// EnclavesAlive reports per-compartment liveness keyed by the full
// compartment name: false once the enclave was crashed by fault injection
// (a real deployment would ask the hypervisor whether the enclave process
// still runs).
func (r *Replica) EnclavesAlive() map[string]bool {
	return map[string]bool{
		compartmentName(crypto.RolePreparation):  !r.prep.Crashed(),
		compartmentName(crypto.RoleConfirmation): !r.conf.Crashed(),
		compartmentName(crypto.RoleExecution):    !r.exec.Crashed(),
	}
}

// WALError returns the first sticky write failure across the
// per-compartment durability stores, nil when persistence is off or
// healthy.
func (r *Replica) WALError() error {
	for _, role := range compartmentRoles {
		cs, ok := r.stores[role]
		if !ok {
			continue
		}
		if err := cs.st.Failed(); err != nil {
			return err
		}
	}
	return nil
}

// ResetAllStats zeroes every stat surface this replica owns in one call:
// the per-compartment ecall/crypto/cache counters (ResetEnclaveStats),
// the broker's message counters, the protocol-event counters, and the
// request tracer. Callers that previously combined ResetEnclaveStats with
// ad-hoc per-counter resets mixed measurement epochs — counters zeroed at
// slightly different times — so this is the only reset entry point the
// observability layer exposes.
func (r *Replica) ResetAllStats() {
	r.ResetEnclaveStats()
	b := r.broker
	b.mReplies.Store(0)
	b.mBatches.Store(0)
	b.mSuspects.Store(0)
	b.mGarbage.Store(0)
	b.mDeduped.Store(0)
	b.mViewChanges.Store(0)
	e := r.execCode
	e.evLeaseRefusals.Store(0)
	e.evReadIndexes.Store(0)
	e.evStallFetches.Store(0)
	e.evProbesSent.Store(0)
	e.evProbesAnswered.Store(0)
	r.cfg.Obs.Trace().Reset()
}

// registerObs publishes every existing stat surface into the
// observability registry as pull-style collectors: the hot paths keep
// their cheap atomics and the registry reads them only when scraped.
// Called once from NewReplica; on a restart the facade drops the dead
// replica's collectors before the new replica re-registers.
func (r *Replica) registerObs() {
	reg := r.cfg.Obs.Registry()
	if reg == nil {
		return
	}
	reg.Collect(func(emit func(name string, value float64)) {
		for _, role := range compartmentRoles {
			c := compartmentName(role)
			s := r.Enclave(role).Stats()
			emit(obs.Label("splitbft_ecalls_total", "compartment", c), float64(s.Count))
			emit(obs.Label("splitbft_ecall_msgs_total", "compartment", c), float64(s.Msgs))
			emit(obs.Label("splitbft_ecall_time_ns_total", "compartment", c), float64(s.Total))
		}
		for i, v := range r.vers {
			c := compartmentName(compartmentRoles[i])
			s := v.Stats()
			emit(obs.Label("splitbft_sig_verifies_total", "compartment", c), float64(s.SigVerifies))
			emit(obs.Label("splitbft_sig_verify_ns_total", "compartment", c), float64(s.SigTime))
			emit(obs.Label("splitbft_mac_verifies_total", "compartment", c), float64(s.MACVerifies))
			emit(obs.Label("splitbft_counter_verifies_total", "compartment", c), float64(s.CounterVerifies))
			emit(obs.Label("splitbft_lease_verifies_total", "compartment", c), float64(s.LeaseVerifies))
		}
		for i, vc := range r.caches {
			c := compartmentName(compartmentRoles[i])
			s := vc.Stats()
			emit(obs.Label("splitbft_verify_cache_hits_total", "compartment", c), float64(s.Hits))
			emit(obs.Label("splitbft_verify_cache_misses_total", "compartment", c), float64(s.Misses))
		}
		for _, role := range compartmentRoles {
			cs, ok := r.stores[role]
			if !ok {
				continue
			}
			c := compartmentName(role)
			s := cs.st.Stats()
			emit(obs.Label("splitbft_wal_appends_total", "compartment", c), float64(s.Appended))
			emit(obs.Label("splitbft_wal_fsyncs_total", "compartment", c), float64(s.Fsyncs))
			emit(obs.Label("splitbft_wal_segments", "compartment", c), float64(s.Segments))
			emit(obs.Label("splitbft_wal_snapshot_index", "compartment", c), float64(s.SnapshotIndex))
		}
		emit("splitbft_executed_ops_total", float64(r.ExecutedOps()))
		emit("splitbft_batches_total", float64(r.Batches()))
		emit("splitbft_suspects_total", float64(r.Suspects()))
		emit("splitbft_dedup_drops_total", float64(r.DedupedMsgs()))
		emit("splitbft_garbage_drops_total", float64(r.DroppedGarbage()))
		emit("splitbft_view_changes_total", float64(r.ViewChanges()))
		emit("splitbft_persisted_blocks_total", float64(r.PersistedBlocks()))
		emit("splitbft_lease_grants_total", float64(r.LeaseGrants()))
		emit("splitbft_counter_creates_total", float64(r.CounterCreates()))
		emit("splitbft_local_reads_total", float64(r.LocalReads()))
		ev := r.Events()
		emit("splitbft_lease_refusals_total", float64(ev.LeaseRefusals))
		emit("splitbft_read_index_rounds_total", float64(ev.ReadIndexes))
		emit("splitbft_stall_fetches_total", float64(ev.StallFetches))
		emit("splitbft_state_probes_sent_total", float64(ev.ProbesSent))
		emit("splitbft_state_probes_answered_total", float64(ev.ProbesAnswered))
		emit("splitbft_recovery_snapshots", float64(r.recovery.Snapshots))
		emit("splitbft_recovery_wal_records", float64(r.recovery.WALRecords))
		emit("splitbft_recovery_replay_ns", float64(r.recovery.Replay))
	})
	reg.OnReset(r.ResetAllStats)
}
