// Sealed state export/import for the three compartments — the
// tee.Durable hooks behind the durability subsystem (internal/store).
//
// A compartment's sealed snapshot must capture everything that a WAL
// replay starting *at* the snapshot point cannot rebuild: the agreement
// bookkeeping above the stable checkpoint (proposals, prepare slots,
// in-flight commits), the application state, the exactly-once reply
// caches, and the provisioned client sessions. Transient collections that
// peers re-feed on their own — checkpoint vote sets, view-change
// collections — are deliberately left out; losing them costs at most one
// detection period of liveness, never safety.
//
// Wire messages embedded in the state (PrePrepares, Prepares, Commits,
// Replies, Checkpoint certificates) reuse the deterministic wire codec, so
// the export format inherits its bounds checking.
package core

import (
	"errors"
	"fmt"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// stateVersion tags every compartment export; imports refuse other
// versions rather than guessing. Version 2 added the trusted-counter fields
// (counter bases, the preparation counter position, the confirmation high
// counter).
const stateVersion = 2

// sessionCounterSlack is added to every restored session nonce counter.
// The un-fsynced WAL tail may hold executions whose encrypted replies
// already used counters past the snapshotted value; jumping far ahead
// makes nonce reuse impossible without burning meaningful nonce space
// (2^64 >> 2^20 per restart).
const sessionCounterSlack = 1 << 20

var errStateVersion = errors.New("core: unsupported compartment state version")

// exportComState appends the fields every compartment persists.
func exportComState(e *messages.Encoder, s *comState) {
	e.U64(s.view)
	e.U64(s.lowWatermark)
	e.VarBytes(s.stableCert.MarshalCert())
	e.U64(s.ctrBase)
	e.U64(s.seqBase)
}

// importComState restores the shared fields; the checkpoint vote
// collection restarts empty (peers re-send votes every interval).
func importComState(d *messages.Decoder, s *comState) error {
	s.view = d.U64()
	s.lowWatermark = d.U64()
	certBytes := d.VarBytes()
	if d.Err() != nil {
		return d.Err()
	}
	cert, err := messages.UnmarshalCheckpointCert(certBytes)
	if err != nil {
		return fmt.Errorf("core: import stable certificate: %w", err)
	}
	s.stableCert = cert
	s.ctrBase = d.U64()
	s.seqBase = d.U64()
	s.checkpoints = make(map[uint64]map[uint32]*messages.Checkpoint)
	return nil
}

// decodeMessage decodes one VarBytes-framed wire message of type T.
func decodeMessage[T messages.Message](d *messages.Decoder) (T, error) {
	var zero T
	raw := d.VarBytes()
	if d.Err() != nil {
		return zero, d.Err()
	}
	m, err := messages.Unmarshal(raw)
	if err != nil {
		return zero, err
	}
	typed, ok := m.(T)
	if !ok {
		return zero, fmt.Errorf("core: state holds %s where %T expected", m.MsgType(), zero)
	}
	return typed, nil
}

// --- Preparation -----------------------------------------------------------

// StateEpoch implements tee.Durable: the stable checkpoint sequence is the
// snapshot generation.
func (p *preparation) StateEpoch() uint64 { return p.lowWatermark }

// ExportState implements tee.Durable. The proposal record is the
// safety-critical part: a primary that forgot what it proposed could
// equivocate after a restart.
func (p *preparation) ExportState() []byte {
	e := messages.NewEncoder(1024)
	e.U8(stateVersion)
	exportComState(e, &p.comState)
	e.U64(p.nextSeq)
	// Trusted-counter position (zero in classic mode): restoring it before
	// WAL replay keeps the counter and the sequence space in lockstep — the
	// replayed proposals re-create their attestations deterministically from
	// here, landing the counter exactly where the fsynced log ends.
	var ctr uint64
	if p.counter != nil {
		ctr = p.counter.Export()
	}
	e.U64(ctr)
	e.U32(uint32(len(p.proposals)))
	for view, vs := range p.proposals {
		e.U64(view)
		e.U32(uint32(len(vs)))
		for seq, digest := range vs {
			e.U64(seq)
			e.Digest(digest)
		}
	}
	if p.lastNewView != nil {
		e.Bool(true)
		e.VarBytes(messages.Marshal(p.lastNewView))
	} else {
		e.Bool(false)
	}
	return e.Bytes()
}

// ImportState implements tee.Durable.
func (p *preparation) ImportState(data []byte) error {
	d := messages.NewDecoder(data)
	if v := d.U8(); v != stateVersion {
		return fmt.Errorf("%w: preparation v%d", errStateVersion, v)
	}
	if err := importComState(d, &p.comState); err != nil {
		return err
	}
	p.nextSeq = d.U64()
	if ctr := d.U64(); p.counter != nil {
		p.counter.Import(ctr)
	}
	p.proposals = make(map[uint64]map[uint64]crypto.Digest)
	nViews := d.Count(1 << 16)
	for i := 0; i < nViews; i++ {
		view := d.U64()
		vs := make(map[uint64]crypto.Digest)
		nSeqs := d.Count(1 << 20)
		for j := 0; j < nSeqs; j++ {
			seq := d.U64()
			vs[seq] = d.Digest()
		}
		p.proposals[view] = vs
	}
	p.viewChanges = make(map[uint64]map[uint32]*messages.ViewChange)
	p.lastNewView = nil
	if d.Bool() {
		nv, err := decodeMessage[*messages.NewView](d)
		if err != nil {
			return err
		}
		p.lastNewView = nv
	}
	return d.Finish()
}

// --- Confirmation ----------------------------------------------------------

// StateEpoch implements tee.Durable.
func (c *confirmation) StateEpoch() uint64 { return c.lowWatermark }

// ExportState implements tee.Durable. Slots carry the prepare
// certificates this compartment would contribute to a view change;
// dropping them across a restart could hide a prepared batch from the new
// primary.
func (c *confirmation) ExportState() []byte {
	e := messages.NewEncoder(1024)
	e.U8(stateVersion)
	exportComState(e, &c.comState)
	e.U64(c.highCtr)
	e.Bool(c.inViewChange)
	if c.myVC != nil {
		e.Bool(true)
		e.VarBytes(messages.Marshal(c.myVC))
	} else {
		e.Bool(false)
	}
	nSlots := 0
	for _, vs := range c.slots {
		nSlots += len(vs)
	}
	e.U32(uint32(nSlots))
	for view, vs := range c.slots {
		for seq, s := range vs {
			e.U64(view)
			e.U64(seq)
			e.Bool(s.committed)
			if s.prePrepare != nil {
				e.Bool(true)
				e.VarBytes(messages.Marshal(s.prePrepare))
			} else {
				e.Bool(false)
			}
			e.U32(uint32(len(s.prepares)))
			for _, prep := range s.prepares {
				e.VarBytes(messages.Marshal(prep))
			}
		}
	}
	return e.Bytes()
}

// ImportState implements tee.Durable.
func (c *confirmation) ImportState(data []byte) error {
	d := messages.NewDecoder(data)
	if v := d.U8(); v != stateVersion {
		return fmt.Errorf("%w: confirmation v%d", errStateVersion, v)
	}
	if err := importComState(d, &c.comState); err != nil {
		return err
	}
	c.highCtr = d.U64()
	c.inViewChange = d.Bool()
	c.myVC = nil
	c.vcResends = 0
	c.vcBackoff = 0
	if d.Bool() {
		vc, err := decodeMessage[*messages.ViewChange](d)
		if err != nil {
			return err
		}
		c.myVC = vc
	}
	c.slots = make(map[uint64]map[uint64]*confSlot)
	c.vcSeen = make(map[uint64]map[uint32]bool)
	nSlots := d.Count(1 << 20)
	for i := 0; i < nSlots; i++ {
		view := d.U64()
		seq := d.U64()
		s := &confSlot{prepares: make(map[uint32]*messages.Prepare)}
		s.committed = d.Bool()
		if d.Bool() {
			pp, err := decodeMessage[*messages.PrePrepare](d)
			if err != nil {
				return err
			}
			s.prePrepare = pp
		}
		nPreps := d.Count(1 << 12)
		for j := 0; j < nPreps; j++ {
			prep, err := decodeMessage[*messages.Prepare](d)
			if err != nil {
				return err
			}
			s.prepares[prep.Replica] = prep
		}
		vs, ok := c.slots[view]
		if !ok {
			vs = make(map[uint64]*confSlot)
			c.slots[view] = vs
		}
		vs[seq] = s
	}
	return d.Finish()
}

// --- Execution -------------------------------------------------------------

// StateEpoch implements tee.Durable.
func (e *execution) StateEpoch() uint64 { return e.lowWatermark }

// ExportState implements tee.Durable. Alongside the agreement bookkeeping
// it captures the application state, the exactly-once reply caches, and
// the provisioned client sessions — everything a client-visible guarantee
// depends on.
func (e *execution) ExportState() []byte {
	enc := messages.NewEncoder(4096)
	enc.U8(stateVersion)
	exportComState(enc, &e.comState)
	enc.U64(e.lastExec)

	// Decided-but-unexecuted slots.
	enc.U32(uint32(len(e.committed)))
	for seq, digest := range e.committed {
		enc.U64(seq)
		enc.Digest(digest)
	}
	// Cached batch bodies (keyed by digest, watermarked by batchSeq).
	enc.U32(uint32(len(e.batchSeq)))
	for digest, seq := range e.batchSeq {
		enc.Digest(digest)
		enc.U64(seq)
		if b, ok := e.batches[digest]; ok {
			enc.VarBytes(messages.MarshalBatch(b))
		} else {
			enc.VarBytes(nil)
		}
	}
	// In-flight commit votes.
	nSets := 0
	for _, vs := range e.commits {
		nSets += len(vs)
	}
	enc.U32(uint32(nSets))
	for view, vs := range e.commits {
		for seq, set := range vs {
			enc.U64(view)
			enc.U64(seq)
			enc.U32(uint32(len(set)))
			for _, cm := range set {
				enc.VarBytes(messages.Marshal(cm))
			}
		}
	}
	// Exactly-once reply caches.
	enc.U32(uint32(len(e.clients)))
	for id, cl := range e.clients {
		enc.U32(id)
		enc.U64(cl.maxExecuted)
		enc.U32(uint32(len(cl.replies)))
		for ts, rep := range cl.replies {
			enc.U64(ts)
			if rep == nil {
				// Skip-only entry installed by state transfer: the
				// timestamp was executed but no reply body is held.
				enc.VarBytes(nil)
			} else {
				enc.VarBytes(messages.Marshal(rep))
			}
		}
	}
	// Confidential sessions: raw key + nonce position.
	enc.U32(uint32(len(e.sessionKeys)))
	for id, key := range e.sessionKeys {
		enc.U32(id)
		enc.VarBytes(key[:])
		var counter uint64
		if s, ok := e.sessions[id]; ok {
			counter = s.Counter()
		}
		enc.U64(counter)
	}
	enc.U32(uint32(len(e.clientPubs)))
	for id, pub := range e.clientPubs {
		enc.U32(id)
		enc.VarBytes(pub[:])
	}
	// The stable snapshot (served to lagging peers) and the live
	// application state at lastExec.
	if snap, ok := e.snapshots[e.stableCert.Seq]; ok {
		enc.Bool(true)
		enc.VarBytes(snap)
	} else {
		enc.Bool(false)
	}
	enc.VarBytes(e.app.Snapshot())
	return enc.Bytes()
}

// ImportState implements tee.Durable.
func (e *execution) ImportState(data []byte) error {
	d := messages.NewDecoder(data)
	if v := d.U8(); v != stateVersion {
		return fmt.Errorf("%w: execution v%d", errStateVersion, v)
	}
	if err := importComState(d, &e.comState); err != nil {
		return err
	}
	e.lastExec = d.U64()

	e.committed = make(map[uint64]crypto.Digest)
	n := d.Count(1 << 20)
	for i := 0; i < n; i++ {
		seq := d.U64()
		e.committed[seq] = d.Digest()
	}
	e.batches = make(map[crypto.Digest]*messages.Batch)
	e.batchSeq = make(map[crypto.Digest]uint64)
	n = d.Count(1 << 20)
	for i := 0; i < n; i++ {
		digest := d.Digest()
		seq := d.U64()
		raw := d.VarBytes()
		e.batchSeq[digest] = seq
		if len(raw) > 0 {
			b, err := messages.UnmarshalBatch(raw)
			if err != nil {
				return err
			}
			e.batches[digest] = b
		}
	}
	e.commits = make(map[uint64]map[uint64]map[uint32]*messages.Commit)
	n = d.Count(1 << 20)
	for i := 0; i < n; i++ {
		view := d.U64()
		seq := d.U64()
		nVotes := d.Count(1 << 12)
		set := make(map[uint32]*messages.Commit, nVotes)
		for j := 0; j < nVotes; j++ {
			cm, err := decodeMessage[*messages.Commit](d)
			if err != nil {
				return err
			}
			set[cm.Replica] = cm
		}
		vs, ok := e.commits[view]
		if !ok {
			vs = make(map[uint64]map[uint32]*messages.Commit)
			e.commits[view] = vs
		}
		vs[seq] = set
	}
	e.clients = make(map[uint32]*execClient)
	n = d.Count(1 << 20)
	for i := 0; i < n; i++ {
		id := d.U32()
		cl := &execClient{maxExecuted: d.U64(), replies: make(map[uint64]*messages.Reply)}
		nReps := d.Count(1 << 16)
		for j := 0; j < nReps; j++ {
			ts := d.U64()
			raw := d.VarBytes()
			if len(raw) == 0 {
				cl.replies[ts] = nil // skip-only entry, no cached body
				continue
			}
			m, err := messages.Unmarshal(raw)
			if err != nil {
				return err
			}
			rep, ok := m.(*messages.Reply)
			if !ok {
				return fmt.Errorf("core: state holds %s where reply expected", m.MsgType())
			}
			cl.replies[ts] = rep
		}
		e.clients[id] = cl
	}
	e.sessions = make(map[uint32]*crypto.Session)
	e.sessionKeys = make(map[uint32]crypto.SessionKey)
	n = d.Count(1 << 16)
	for i := 0; i < n; i++ {
		id := d.U32()
		keyBytes := d.VarBytes()
		counter := d.U64()
		if len(keyBytes) != crypto.SessionKeySize {
			return fmt.Errorf("core: session key for client %d has %d bytes", id, len(keyBytes))
		}
		var key crypto.SessionKey
		copy(key[:], keyBytes)
		sess, err := crypto.NewSession(key, byte(10+e.id))
		if err != nil {
			return err
		}
		// The nonce-counter slack is applied once, in finishRecovery —
		// it runs after both this import and the WAL replay, covering
		// imported and replay-created sessions uniformly.
		sess.SetCounter(counter)
		e.sessions[id] = sess
		e.sessionKeys[id] = key
	}
	e.clientPubs = make(map[uint32][32]byte)
	n = d.Count(1 << 16)
	for i := 0; i < n; i++ {
		id := d.U32()
		pubBytes := d.VarBytes()
		if len(pubBytes) != 32 {
			return fmt.Errorf("core: client %d ECDH key has %d bytes", id, len(pubBytes))
		}
		var pub [32]byte
		copy(pub[:], pubBytes)
		e.clientPubs[id] = pub
	}
	e.snapshots = make(map[uint64][]byte)
	if d.Bool() {
		e.snapshots[e.stableCert.Seq] = d.VarBytes()
	}
	appState := d.VarBytes()
	if err := d.Finish(); err != nil {
		return err
	}
	return e.app.Restore(appState)
}

// finishRecovery runs after the sealed snapshot import and the WAL replay,
// before the replica starts serving: it advances every session nonce
// counter past anything the pre-crash process may have used (the sole
// application of sessionCounterSlack, covering snapshot-imported and
// replay-created sessions alike), and re-arms the missing-body stall
// detector — replay discards enclave outputs, so a BatchFetch fired
// during replay went nowhere; the live one re-fires as soon as traffic
// flows.
func (e *execution) finishRecovery() {
	for _, s := range e.sessions {
		s.SetCounter(s.Counter() + sessionCounterSlack)
	}
	e.stallSeq = 0
	e.stallTicks = 0
	// Arm the rejoin nudge: whatever committed while this replica was down
	// is invisible to the local log, and on an idle cluster no checkpoint
	// traffic would ever reveal it. Probing asks the peers directly; if
	// none is ahead the budget drains quietly.
	e.probing = true
	e.probesLeft = probeBudget
}
