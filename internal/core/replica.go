package core

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/store"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

// verifyCacheEntries sizes each compartment's signature-verification
// cache; it comfortably covers a watermark window of in-flight messages.
const verifyCacheEntries = 1 << 13

// replayChunk is how many recovered WAL records one trusted-boundary
// crossing replays (the recovery analog of Config.EcallBatch).
const replayChunk = 64

// Replica is one SplitBFT replica: three enclaves (Preparation,
// Confirmation, Execution) plus the untrusted broker. Create all replicas
// of a group with the same Registry before starting any of them — NewReplica
// registers this replica's enclave public keys (the deployment-time
// attestation step).
type Replica struct {
	cfg    Config
	prep   *tee.Enclave
	conf   *tee.Enclave
	exec   *tee.Enclave
	broker *broker
	// caches are the per-compartment verification caches, for stats. Each
	// compartment owns its own cache — compartments share no state (§3.2),
	// so a cache is enclave-local, warmed by that enclave's verify pool.
	caches []*messages.VerifyCache
	// vers are the per-compartment verifiers, kept for crypto-op stats.
	vers []*messages.Verifier
	// stores are the per-compartment durability stores (nil without
	// DataDir); recovery holds what NewReplica reconstructed from them.
	stores   map[crypto.Role]*comStore
	recovery RecoveryStats
	// counter is the trusted monotonic counter enclave (trusted consensus
	// mode or read leases; nil otherwise).
	counter *tee.TrustedCounter
	// execCode is the Execution compartment's protocol code, kept for the
	// read-lease statistics (LocalReads).
	execCode *execution
}

// RecoveryStats describes what a replica reconstructed from its durability
// stores at construction time.
type RecoveryStats struct {
	// Snapshots is how many compartments restored a sealed state snapshot
	// (0–3).
	Snapshots int
	// WALRecords is the total number of write-ahead-log records replayed
	// across the three compartments.
	WALRecords uint64
	// Replay is the time spent re-invoking the replayed records.
	Replay time.Duration
	// Total is the full recovery time: store opening, unsealing, state
	// import and replay.
	Total time.Duration
}

// ReplayOpsPerSec returns the WAL replay throughput (0 before any replay).
func (r RecoveryStats) ReplayOpsPerSec() float64 {
	if r.Replay <= 0 || r.WALRecords == 0 {
		return 0
	}
	return float64(r.WALRecords) / r.Replay.Seconds()
}

// NewReplica launches the three compartment enclaves and wires the broker.
func NewReplica(cfg Config) (*Replica, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// One verifier per compartment: each carries its own
	// signature-verification cache so the compartments stay share-nothing.
	// Self identifies the compartment for MAC-mode authenticator slots.
	var vers [3]*messages.Verifier
	var caches []*messages.VerifyCache
	compartmentRoles := [3]crypto.Role{crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution}
	for i := range vers {
		ver, err := messages.NewVerifierMode(cfg.N, cfg.F, cfg.Registry, messages.SplitScheme(), cfg.ConsensusMode)
		if err != nil {
			return nil, err
		}
		ver.Cache = messages.NewVerifyCache(verifyCacheEntries)
		ver.Mode = cfg.AgreementAuth
		ver.Self = crypto.Identity{ReplicaID: cfg.ID, Role: compartmentRoles[i]}
		caches = append(caches, ver.Cache)
		vers[i] = ver
	}

	rng := func(role crypto.Role) io.Reader {
		if len(cfg.KeySeed) == 0 {
			return nil
		}
		return enclaveKeyStream(cfg.KeySeed, cfg.ID, role)
	}

	// Trusted consensus mode — and the read-lease fast path, which anchors
	// leases in the same counter enclave — launch the counter and register
	// its attestation key before any compartment sees traffic. With a
	// KeySeed the key derives from the counter's own stream so peer
	// processes can compute it (RegisterDeterministicKeys mirrors the
	// derivation).
	var counter *tee.TrustedCounter
	if cfg.ConsensusMode == messages.ConsensusTrusted || cfg.ReadLeases {
		ctrID := crypto.Identity{ReplicaID: cfg.ID, Role: crypto.RoleCounter}
		var err error
		counter, err = tee.NewTrustedCounterWithRand(ctrID, rng(crypto.RoleCounter))
		if err != nil {
			return nil, fmt.Errorf("launch counter enclave: %w", err)
		}
		cfg.Registry.Register(ctrID, counter.PublicKey())
	}

	prepCode := newPreparation(cfg, vers[0], counter)
	confCode := newConfirmation(cfg, vers[1])
	execCode := newExecution(cfg, vers[2])
	prep, err := tee.NewEnclaveWithRand(cfg.ID, crypto.RolePreparation, prepCode, cfg.Cost, rng(crypto.RolePreparation))
	if err != nil {
		return nil, fmt.Errorf("launch preparation enclave: %w", err)
	}
	conf, err := tee.NewEnclaveWithRand(cfg.ID, crypto.RoleConfirmation, confCode, cfg.Cost, rng(crypto.RoleConfirmation))
	if err != nil {
		return nil, fmt.Errorf("launch confirmation enclave: %w", err)
	}
	exec, err := tee.NewEnclaveWithRand(cfg.ID, crypto.RoleExecution, execCode, cfg.Cost, rng(crypto.RoleExecution))
	if err != nil {
		return nil, fmt.Errorf("launch execution enclave: %w", err)
	}

	// Register the enclaves' identity and X25519 keys: in a real
	// deployment the operators verify attestation quotes and exchange
	// these out of band. The X25519 keys seed the pairwise agreement-MAC
	// channels of the MAC fast path.
	for _, enc := range []*tee.Enclave{prep, conf, exec} {
		cfg.Registry.Register(enc.Identity(), enc.PublicKey())
		cfg.Registry.RegisterECDH(enc.Identity(), enc.ECDHPublicKey())
	}

	// Enable the enclave-side parallel verification stage of the pipeline.
	for _, enc := range []*tee.Enclave{prep, conf, exec} {
		enc.SetVerifyWorkers(cfg.VerifyWorkers)
	}

	if cfg.AgreementAuth == messages.AuthMAC {
		// Pairwise key establishment: each compartment derives the
		// agreement-MAC key it shares with any peer compartment lazily,
		// from its enclave's X25519 key and the peer's registered public
		// key — both ends of a pair compute the same key without it ever
		// leaving the two enclaves.
		for i, enc := range []*tee.Enclave{prep, conf, exec} {
			st := pairwiseMACStore(enc, cfg.Registry)
			vers[i].MACs = st
			switch i {
			case 0:
				prepCode.rmacs = st
			case 1:
				confCode.rmacs = st
			case 2:
				execCode.rmacs = st
			}
		}
	}

	r := &Replica{cfg: cfg, prep: prep, conf: conf, exec: exec, caches: caches, vers: vers[:], counter: counter, execCode: execCode}

	// Durability: open the per-compartment stores and recover — sealed
	// snapshot first, then WAL replay — before any broker thread runs.
	// What the local log cannot cover (the un-fsynced tail) is closed
	// later through the ordinary checkpoint/state-transfer path once the
	// replica rejoins its peers.
	if cfg.DataDir != "" {
		begin := time.Now()
		r.stores = make(map[crypto.Role]*comStore, 3)
		for _, enc := range []*tee.Enclave{prep, conf, exec} {
			role := enc.Identity().Role
			st, recovered, err := store.Open(
				filepath.Join(cfg.DataDir, role.String()),
				store.Options{Sealer: enc, FsyncInterval: cfg.FsyncInterval, Faults: cfg.DiskFaults},
			)
			if err != nil {
				r.closeStores()
				return nil, fmt.Errorf("core: open %v store: %w", role, err)
			}
			cs := &comStore{st: st, enc: enc}
			r.stores[role] = cs
			if recovered.Snapshot != nil {
				if err := enc.UnsealState(recovered.Snapshot); err != nil {
					r.closeStores()
					return nil, fmt.Errorf("core: restore %v snapshot: %w", role, err)
				}
				r.recovery.Snapshots++
				cs.lastEpoch.Store(enc.StateEpoch())
			}
			replayBegin := time.Now()
			// Replay mirrors the live delivery path: records go through
			// InvokeBatch so the per-crossing transition cost amortizes
			// over replayChunk messages instead of being paid per record.
			// Outputs are discarded: everything a replayed handler would
			// emit was either already delivered before the crash or is
			// retransmittable on demand.
			for lo := 0; lo < len(recovered.Records); lo += replayChunk {
				hi := lo + replayChunk
				if hi > len(recovered.Records) {
					hi = len(recovered.Records)
				}
				_, _ = enc.InvokeBatch(recovered.Records[lo:hi])
			}
			r.recovery.Replay += time.Since(replayBegin)
			r.recovery.WALRecords += uint64(len(recovered.Records))
		}
		execCode.finishRecovery()
		r.recovery.Total = time.Since(begin)
	}

	r.broker = newBroker(cfg, prep, conf, exec, r.stores)

	// Persisting applications (app.Persister) write sealed state through an
	// ocall (§6: one ocall per block written encrypted to untrusted
	// storage).
	if p, ok := cfg.App.(app.Persister); ok {
		exec.RegisterOcall("fs.write", r.broker.persistBlock)
		p.SetPersist(func(block []byte) error {
			sealed, err := exec.Seal(block)
			if err != nil {
				return err
			}
			_, err = exec.Ocall("fs.write", sealed)
			return err
		})
	}

	// Observability: publish every stat surface as pull-style collectors.
	// No-op when cfg.Obs is nil.
	r.registerObs()
	return r, nil
}

// pairwiseMACStore builds a compartment's derived agreement-MAC store: key
// material comes from the enclave's X25519 exchange with each registered
// peer, and the registry epoch invalidates cached keys when a peer
// re-registers (restart with fresh keys).
func pairwiseMACStore(enc *tee.Enclave, reg *crypto.Registry) *crypto.MACStore {
	return crypto.NewDerivedMACStore(enc.Identity(), func(peer crypto.Identity) (crypto.MACKey, error) {
		pub, err := reg.LookupECDH(peer)
		if err != nil {
			return crypto.MACKey{}, err
		}
		return enc.PairwiseMAC(pub)
	}, reg.ECDHEpoch)
}

// Handler returns the transport handler for this replica's endpoint.
func (r *Replica) Handler() transport.Handler { return r.broker.handler }

// Start begins processing with the given connection.
func (r *Replica) Start(conn transport.Conn) { r.broker.start(conn) }

// Stop terminates the broker threads, then flushes and closes the
// durability stores (a graceful shutdown loses nothing). Enclaves are
// passive after that.
func (r *Replica) Stop() {
	r.broker.stopAll()
	r.closeStores()
}

// Crash kills the replica abruptly — the SIGKILL analog used by the
// recovery scenarios: every enclave is crashed so drained backlog stops
// mutating state, the stores drop their un-fsynced group-commit tail
// (exactly what a real kill would lose), and the broker threads stop.
func (r *Replica) Crash() {
	r.prep.Crash()
	r.conf.Crash()
	r.exec.Crash()
	for _, cs := range r.stores {
		cs.st.Crash()
	}
	r.broker.stopAll()
	// Join in-flight background snapshot writes: a restart must never
	// find the old replica's writer still touching the directory the new
	// store is about to own. (The write itself cannot be aborted; its
	// result is simply ignored on a crashed store.)
	for _, cs := range r.stores {
		cs.drain()
	}
}

func (r *Replica) closeStores() {
	for _, cs := range r.stores {
		cs.drain()
		_ = cs.st.Close()
	}
}

// Recovery reports what this replica reconstructed from its durability
// stores at construction (zero value without persistence).
func (r *Replica) Recovery() RecoveryStats { return r.recovery }

// StoreStats returns the per-compartment durability store counters, nil
// without persistence.
func (r *Replica) StoreStats() map[crypto.Role]store.Stats {
	if r.stores == nil {
		return nil
	}
	out := make(map[crypto.Role]store.Stats, len(r.stores))
	for role, cs := range r.stores {
		out[role] = cs.st.Stats()
	}
	return out
}

// ExecutedOps returns the number of client operations this replica has
// replied to.
func (r *Replica) ExecutedOps() uint64 { return r.broker.mReplies.Load() }

// Batches returns the number of batches the environment submitted for
// ordering.
func (r *Replica) Batches() uint64 { return r.broker.mBatches.Load() }

// Suspects returns how many times the failure detector fired.
func (r *Replica) Suspects() uint64 { return r.broker.mSuspects.Load() }

// DedupedMsgs returns how many byte-identical retransmits the untrusted
// classify stage dropped before they paid for an enclave crossing.
func (r *Replica) DedupedMsgs() uint64 { return r.broker.mDeduped.Load() }

// DroppedGarbage returns how many malformed inbound messages the
// untrusted classify stage dropped before they paid for an enclave
// crossing.
func (r *Replica) DroppedGarbage() uint64 { return r.broker.mGarbage.Load() }

// VerifyCacheStats returns the summed signature-verification cache
// counters across the three compartments.
func (r *Replica) VerifyCacheStats() messages.VerifyCacheStats {
	var out messages.VerifyCacheStats
	for _, c := range r.caches {
		s := c.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
	}
	return out
}

// VerifierStats returns the summed crypto-op counters across the three
// compartments: executed Ed25519 verifications and their wall time, plus
// agreement-MAC verifications (the auth ablation's instrumentation).
func (r *Replica) VerifierStats() messages.VerifierStats {
	var out messages.VerifierStats
	for _, v := range r.vers {
		s := v.Stats()
		out.SigVerifies += s.SigVerifies
		out.SigTime += s.SigTime
		out.MACVerifies += s.MACVerifies
		out.CounterVerifies += s.CounterVerifies
		out.LeaseVerifies += s.LeaseVerifies
	}
	return out
}

// LeaseGrants returns the number of read leases this replica's counter
// enclave granted since boot or the last stats reset (zero when read
// leases are off or this replica was never primary).
func (r *Replica) LeaseGrants() uint64 {
	if r.counter == nil {
		return 0
	}
	return r.counter.LeaseGrants()
}

// LocalReads returns the number of reads this replica's Execution
// compartment served locally under a lease, without agreement.
func (r *Replica) LocalReads() uint64 { return r.execCode.localReads.Load() }

// CounterCreates returns the number of counter attestations this replica's
// counter enclave created since boot or the last stats reset (zero in
// classic consensus mode).
func (r *Replica) CounterCreates() uint64 {
	if r.counter == nil {
		return 0
	}
	return r.counter.Creates()
}

// PersistedBlocks returns the number of sealed blockchain blocks the
// environment stored (zero for non-blockchain applications).
func (r *Replica) PersistedBlocks() int { return r.broker.persistedBlocks() }

// EnclaveStats returns per-compartment ecall statistics (the Figure 4
// instrumentation).
func (r *Replica) EnclaveStats() map[crypto.Role]tee.ECallSnapshot {
	return map[crypto.Role]tee.ECallSnapshot{
		crypto.RolePreparation:  r.prep.Stats(),
		crypto.RoleConfirmation: r.conf.Stats(),
		crypto.RoleExecution:    r.exec.Stats(),
	}
}

// ResetEnclaveStats zeroes the per-compartment ecall statistics, the
// verify-cache counters (cached entries are kept) and the crypto-op
// counters.
func (r *Replica) ResetEnclaveStats() {
	r.prep.ResetStats()
	r.conf.ResetStats()
	r.exec.ResetStats()
	for _, c := range r.caches {
		c.Reset()
	}
	for _, v := range r.vers {
		v.ResetStats()
	}
	if r.counter != nil {
		r.counter.ResetCreates()
	}
	r.execCode.localReads.Store(0)
}

// CrashEnclave kills one compartment (fault injection: the environment can
// crash an enclave at any time). Role must be one of the three compartment
// roles.
func (r *Replica) CrashEnclave(role crypto.Role) {
	switch role {
	case crypto.RolePreparation:
		r.prep.Crash()
	case crypto.RoleConfirmation:
		r.conf.Crash()
	case crypto.RoleExecution:
		r.exec.Crash()
	}
}

// Enclave exposes a compartment's enclave for tests and fault injection.
func (r *Replica) Enclave(role crypto.Role) *tee.Enclave {
	switch role {
	case crypto.RolePreparation:
		return r.prep
	case crypto.RoleConfirmation:
		return r.conf
	case crypto.RoleExecution:
		return r.exec
	default:
		return nil
	}
}
