package core

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"fmt"
	"io"

	"github.com/splitbft/splitbft/internal/crypto"
)

// enclaveKeyStream derives the entropy stream for one enclave's keys from
// the deployment seed. The same (seed, replica, role) always yields the
// same stream; NewEnclaveWithRand reads the identity key from it first.
func enclaveKeyStream(seed []byte, replica uint32, role crypto.Role) io.Reader {
	return crypto.NewKeyStream(seed, "enclave", fmt.Sprintf("%d", replica), role.String())
}

// RegisterDeterministicKeys registers the public identity and X25519 keys
// of every enclave of an n-replica deployment whose Config.KeySeed is
// seed. It is how separate processes (cmd/splitbft-replica,
// cmd/splitbft-client) agree on the key registry without a live
// attestation exchange: the shared seed plays the role of the attestation
// ceremony's trust root. The derivation mirrors the enclave's stream read
// order exactly (identity key, sealing key, ECDH key — 32 bytes each; see
// tee.NewEnclaveWithRand): the X25519 keys registered here are what
// MAC-mode replicas use to establish pairwise agreement keys with peer
// processes they never attest live.
func RegisterDeterministicKeys(reg *crypto.Registry, seed []byte, n int) error {
	roles := []crypto.Role{crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution}
	for id := 0; id < n; id++ {
		// The counter enclave's attestation key comes from its own stream,
		// separate from the compartment enclaves' streams (the compartments'
		// identity → seal → ECDH read order stays untouched). It is
		// registered unconditionally: harmless in classic deployments, and
		// required before any trusted-mode peer process verifies a counter
		// attestation.
		ctrStream := enclaveKeyStream(seed, uint32(id), crypto.RoleCounter)
		ctrPub, _, err := ed25519.GenerateKey(ctrStream)
		if err != nil {
			return fmt.Errorf("derive counter key for replica %d: %w", id, err)
		}
		reg.Register(crypto.Identity{ReplicaID: uint32(id), Role: crypto.RoleCounter}, ctrPub)
		for _, role := range roles {
			stream := enclaveKeyStream(seed, uint32(id), role)
			pub, _, err := ed25519.GenerateKey(stream)
			if err != nil {
				return fmt.Errorf("derive key for replica %d %v: %w", id, role, err)
			}
			ident := crypto.Identity{ReplicaID: uint32(id), Role: role}
			reg.Register(ident, pub)
			// Skip the sealing key, then derive the ECDH public key from
			// the same positions the enclave reads.
			var skip [32]byte
			if _, err := io.ReadFull(stream, skip[:]); err != nil {
				return fmt.Errorf("derive seal position for replica %d %v: %w", id, role, err)
			}
			var ecdhSeed [32]byte
			if _, err := io.ReadFull(stream, ecdhSeed[:]); err != nil {
				return fmt.Errorf("derive ECDH seed for replica %d %v: %w", id, role, err)
			}
			ek, err := ecdh.X25519().NewPrivateKey(ecdhSeed[:])
			if err != nil {
				return fmt.Errorf("derive ECDH key for replica %d %v: %w", id, role, err)
			}
			var epub [32]byte
			copy(epub[:], ek.PublicKey().Bytes())
			reg.RegisterECDH(ident, epub)
		}
	}
	return nil
}
