package core

import (
	"crypto/ed25519"
	"fmt"
	"io"

	"github.com/splitbft/splitbft/internal/crypto"
)

// enclaveKeyStream derives the entropy stream for one enclave's keys from
// the deployment seed. The same (seed, replica, role) always yields the
// same stream; NewEnclaveWithRand reads the identity key from it first.
func enclaveKeyStream(seed []byte, replica uint32, role crypto.Role) io.Reader {
	return crypto.NewKeyStream(seed, "enclave", fmt.Sprintf("%d", replica), role.String())
}

// RegisterDeterministicKeys registers the public identity keys of every
// enclave of an n-replica deployment whose Config.KeySeed is seed. It is
// how separate processes (cmd/splitbft-replica, cmd/splitbft-client) agree
// on the key registry without a live attestation exchange: the shared seed
// plays the role of the attestation ceremony's trust root.
func RegisterDeterministicKeys(reg *crypto.Registry, seed []byte, n int) error {
	roles := []crypto.Role{crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution}
	for id := 0; id < n; id++ {
		for _, role := range roles {
			stream := enclaveKeyStream(seed, uint32(id), role)
			pub, _, err := ed25519.GenerateKey(stream)
			if err != nil {
				return fmt.Errorf("derive key for replica %d %v: %w", id, role, err)
			}
			reg.Register(crypto.Identity{ReplicaID: uint32(id), Role: role}, pub)
		}
	}
	return nil
}
