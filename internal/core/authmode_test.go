package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/transport"
)

// MAC-mode cluster tests: the agreement fast path must replicate, survive
// view changes, and reject forged or replayed authenticators. The
// fine-grained single-message cases live in internal/messages; here whole
// replicas run over the simulated network.

func withMACAuth(c *Config) { c.AgreementAuth = messages.AuthMAC }

func TestMACModeReplicates(t *testing.T) {
	c := newCluster(t, false, withMACAuth)
	cl := c.client(100)
	for i := 0; i < 12; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "replica convergence", func() bool {
		d := c.kvs[0].Digest()
		for _, a := range c.kvs[1:] {
			if a.Digest() != d {
				return false
			}
		}
		return true
	})
	// The normal case must actually run on MACs: the leader's verifiers
	// should have done agreement-MAC work, and no Ed25519 verifications
	// beyond the attestation handshake and checkpoint-free traffic (a
	// fault-free run has no ViewChange/NewView to verify).
	vs := c.replicas[0].VerifierStats()
	if vs.MACVerifies == 0 {
		t.Fatal("MAC mode ran without any agreement-MAC verification")
	}
	if vs.SigVerifies != 0 {
		t.Fatalf("fault-free MAC-mode run executed %d Ed25519 verifications on the agreement path", vs.SigVerifies)
	}
}

func TestMACModeViewChange(t *testing.T) {
	c := newCluster(t, false, withMACAuth, func(cfg *Config) {
		cfg.RequestTimeout = 150 * time.Millisecond
		cfg.CheckpointInterval = 4
	})
	cl := c.client(100)
	// Cross a checkpoint boundary first, so the ViewChange carries a
	// non-genesis MAC-mode (vouched) stable certificate and prepare certs.
	for i := 0; i < 6; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("pre%d", i), []byte("x"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	c.net.Isolate(transport.ReplicaEndpoint(0))
	// Progress across the view change proves the vouched certificates
	// verify: backups only accept the NewView after validating every
	// embedded ViewChange, including its single-signature certs.
	if _, err := cl.Invoke(app.EncodePut("post", []byte("y"))); err != nil {
		t.Fatalf("request did not survive primary failure in MAC mode: %v", err)
	}
	res, err := cl.Invoke(app.EncodeGet("pre3"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "x" {
		t.Fatalf("lost committed write across MAC-mode view change: %q", res)
	}
}

// TestMACModeForgedTrafficIgnored plays a network adversary that injects
// agreement messages without holding any pairwise enclave key: a quorum of
// forged Commits for a fabricated batch, and a Prepare whose authenticator
// was replayed from a different message. Neither may move any replica.
func TestMACModeForgedTrafficIgnored(t *testing.T) {
	c := newCluster(t, false, withMACAuth)
	rogue, err := c.net.Join(transport.ClientEndpoint(999), func(transport.Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}

	// Forged commits: correct shape, garbage MACs (the adversary knows the
	// layout but no keys). 2f+1 distinct senders would form a certificate
	// if any were accepted.
	digest := crypto.HashData([]byte("forged-batch"))
	for sender := uint32(0); sender < 3; sender++ {
		cm := &messages.Commit{View: 0, Seq: 1, Digest: digest, Replica: sender}
		cm.Auth = crypto.Authenticator{MACs: make([][crypto.MACSize]byte, c.n)}
		for i := range cm.Auth.MACs {
			cm.Auth.MACs[i][0] = byte(0xA0 + i)
		}
		raw := messages.Marshal(cm)
		for id := 0; id < c.n; id++ {
			if err := rogue.Send(transport.ReplicaEndpoint(uint32(id)), raw); err != nil {
				t.Fatal(err)
			}
		}
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range c.replicas {
		if r.ExecutedOps() != 0 {
			t.Fatalf("replica %d executed a forged commit certificate", i)
		}
	}

	// Replayed authenticator: capture a legitimate op's effect first.
	cl := c.client(100)
	if _, err := cl.Invoke(app.EncodePut("real", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "legitimate op executes", func() bool {
		for _, r := range c.replicas {
			if r.ExecutedOps() == 0 {
				return false
			}
		}
		return true
	})
	// Build a Prepare for a fabricated digest but stamp it with the MAC
	// vector of a *different* message (here: one computed over different
	// signing bytes using the client's keys — any replayed/transplanted
	// vector is equivalent: it cannot match the new signing bytes under
	// the pairwise enclave keys the adversary does not hold).
	donor := &messages.Prepare{View: 0, Seq: 9, Digest: crypto.HashData([]byte("a")), Replica: 1}
	forged := &messages.Prepare{View: 0, Seq: 9, Digest: crypto.HashData([]byte("b")), Replica: 1}
	clientMACs := crypto.NewMACStore([]byte("split-test-secret"), crypto.Identity{ReplicaID: 999, Role: crypto.RoleClient})
	forged.Auth = clientMACs.Authenticate(donor.SigningBytes(), messages.AgreementAuthReceivers(messages.TPrepare, c.n))
	raw := messages.Marshal(forged)
	before := make([]uint64, c.n)
	for i, r := range c.replicas {
		before[i] = r.ExecutedOps()
	}
	for id := 0; id < c.n; id++ {
		if err := rogue.Send(transport.ReplicaEndpoint(uint32(id)), raw); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range c.replicas {
		if r.ExecutedOps() != before[i] {
			t.Fatalf("replica %d advanced on a replayed authenticator", i)
		}
	}
}
