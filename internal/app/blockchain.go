package app

import (
	"fmt"
	"sync"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// DefaultBlockSize matches the paper's blockchain configuration: "creates
// blocks of five messages in the execution enclave" (§6).
const DefaultBlockSize = 5

// PersistFunc writes a sealed block to untrusted storage. In SplitBFT it is
// wired to an ocall so the write pays the enclave-transition cost; the data
// is sealed (encrypted) before it leaves the enclave.
type PersistFunc func(sealedBlock []byte) error

// Tx is one ledger transaction: the ordered client operation.
type Tx struct {
	ClientID uint32
	Op       []byte
}

// BlockHeader summarizes a committed block for chain verification.
type BlockHeader struct {
	Index    uint64
	PrevHash crypto.Digest
	TxRoot   crypto.Digest
	Hash     crypto.Digest
}

// Blockchain is the distributed-ledger application from the paper's second
// use case: ordered operations accumulate into blocks of BlockSize
// transactions; each full block is hashed into the chain and persisted via
// the PersistFunc (one ocall per block, the overhead source the paper
// measures against the KVS).
type Blockchain struct {
	blockSize int
	persist   PersistFunc

	mu      sync.RWMutex
	pending []Tx
	headers []BlockHeader
	tip     crypto.Digest
}

// NewBlockchain creates a ledger producing blocks of blockSize
// transactions. persist may be nil (blocks are then kept in memory only).
func NewBlockchain(blockSize int, persist PersistFunc) *Blockchain {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Blockchain{blockSize: blockSize, persist: persist}
}

// SetPersist installs the block writer after construction; the Execution
// compartment wires the ocall here once the enclave is launched.
func (b *Blockchain) SetPersist(p PersistFunc) { b.persist = p }

func txDigest(txs []Tx) crypto.Digest {
	e := messages.NewEncoder(64 * len(txs))
	for _, tx := range txs {
		e.U32(tx.ClientID)
		e.VarBytes(tx.Op)
	}
	return crypto.HashData(e.Bytes())
}

func headerHash(index uint64, prev, root crypto.Digest) crypto.Digest {
	e := messages.NewEncoder(8 + 2*crypto.DigestSize)
	e.U64(index)
	e.Digest(prev)
	e.Digest(root)
	return crypto.HashData(e.Bytes())
}

// Execute implements Application: it appends the transaction, sealing a new
// block when blockSize transactions have accumulated.
func (b *Blockchain) Execute(clientID uint32, op []byte) []byte {
	if len(op) == 0 {
		return NoOpResult
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pending = append(b.pending, Tx{ClientID: clientID, Op: append([]byte(nil), op...)})
	if len(b.pending) >= b.blockSize {
		b.sealBlock()
	}
	return []byte(fmt.Sprintf("ACK %d", uint64(len(b.headers))*uint64(b.blockSize)+uint64(len(b.pending))))
}

// sealBlock turns the pending transactions into a block, links it into the
// chain, and persists it.
func (b *Blockchain) sealBlock() {
	root := txDigest(b.pending)
	idx := uint64(len(b.headers))
	hash := headerHash(idx, b.tip, root)
	hdr := BlockHeader{Index: idx, PrevHash: b.tip, TxRoot: root, Hash: hash}
	b.headers = append(b.headers, hdr)
	b.tip = hash

	if b.persist != nil {
		e := messages.NewEncoder(256)
		e.U64(hdr.Index)
		e.Digest(hdr.PrevHash)
		e.Digest(hdr.TxRoot)
		e.U32(uint32(len(b.pending)))
		for _, tx := range b.pending {
			e.U32(tx.ClientID)
			e.VarBytes(tx.Op)
		}
		// Persistence failures must not diverge replicated state: the block
		// remains in the in-memory chain; the environment can retry
		// persistence out of band (it only affects durability/liveness).
		_ = b.persist(e.Bytes())
	}
	b.pending = nil
}

// Height returns the number of sealed blocks.
func (b *Blockchain) Height() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.headers)
}

// Headers returns a copy of the chain headers (test/inspection helper).
func (b *Blockchain) Headers() []BlockHeader {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]BlockHeader(nil), b.headers...)
}

// VerifyChain checks hash linkage of a header sequence. It reports the
// first broken link, or nil for a valid (possibly empty) chain.
func VerifyChain(headers []BlockHeader) error {
	prev := crypto.Digest{}
	for i, h := range headers {
		if h.Index != uint64(i) {
			return fmt.Errorf("block %d has index %d", i, h.Index)
		}
		if h.PrevHash != prev {
			return fmt.Errorf("block %d prev-hash mismatch", i)
		}
		if want := headerHash(h.Index, h.PrevHash, h.TxRoot); h.Hash != want {
			return fmt.Errorf("block %d hash mismatch", i)
		}
		prev = h.Hash
	}
	return nil
}

// Digest implements Application: the chain tip combined with the digest of
// pending transactions.
func (b *Blockchain) Digest() crypto.Digest {
	b.mu.RLock()
	defer b.mu.RUnlock()
	pend := txDigest(b.pending)
	return crypto.HashConcat(b.tip[:], pend[:])
}

// Snapshot implements Application: headers plus pending transactions.
func (b *Blockchain) Snapshot() []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e := messages.NewEncoder(1024)
	e.U32(uint32(len(b.headers)))
	for _, h := range b.headers {
		e.U64(h.Index)
		e.Digest(h.PrevHash)
		e.Digest(h.TxRoot)
		e.Digest(h.Hash)
	}
	e.U32(uint32(len(b.pending)))
	for _, tx := range b.pending {
		e.U32(tx.ClientID)
		e.VarBytes(tx.Op)
	}
	return e.Bytes()
}

// Restore implements Application.
func (b *Blockchain) Restore(snapshot []byte) error {
	d := messages.NewDecoder(snapshot)
	nh := d.Count(1 << 24)
	headers := make([]BlockHeader, 0, nh)
	for i := 0; i < nh; i++ {
		h := BlockHeader{Index: d.U64(), PrevHash: d.Digest(), TxRoot: d.Digest(), Hash: d.Digest()}
		headers = append(headers, h)
	}
	np := d.Count(1 << 20)
	pending := make([]Tx, 0, np)
	for i := 0; i < np; i++ {
		pending = append(pending, Tx{ClientID: d.U32(), Op: d.VarBytes()})
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("blockchain restore: %w", err)
	}
	if err := VerifyChain(headers); err != nil {
		return fmt.Errorf("blockchain restore: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.headers = headers
	b.pending = pending
	b.tip = crypto.Digest{}
	if len(headers) > 0 {
		b.tip = headers[len(headers)-1].Hash
	}
	return nil
}
