package app

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestKVSPutGetDelete(t *testing.T) {
	k := NewKVS()
	if got := k.Execute(1, EncodePut("a", []byte("1"))); !bytes.Equal(got, []byte("OK")) {
		t.Fatalf("put = %q", got)
	}
	if got := k.Execute(1, EncodeGet("a")); !bytes.Equal(got, []byte("1")) {
		t.Fatalf("get = %q", got)
	}
	if got := k.Execute(1, EncodeGet("missing")); !bytes.Equal(got, []byte("NOTFOUND")) {
		t.Fatalf("get missing = %q", got)
	}
	if got := k.Execute(1, EncodeDelete("a")); !bytes.Equal(got, []byte("OK")) {
		t.Fatalf("delete = %q", got)
	}
	if got := k.Execute(1, EncodeGet("a")); !bytes.Equal(got, []byte("NOTFOUND")) {
		t.Fatalf("get after delete = %q", got)
	}
	if k.Len() != 0 {
		t.Fatalf("Len = %d", k.Len())
	}
}

func TestKVSCorruptOpsAreNoOps(t *testing.T) {
	k := NewKVS()
	k.Execute(1, EncodePut("a", []byte("1")))
	before := k.Digest()
	for _, op := range [][]byte{
		nil,
		{},
		{99},            // unknown opcode
		{1, 0xff, 0xff}, // truncated PUT
		append(EncodePut("b", []byte("2")), 0xEE), // trailing garbage
	} {
		if got := k.Execute(1, op); !bytes.Equal(got, NoOpResult) {
			t.Fatalf("corrupt op %v executed: %q", op, got)
		}
	}
	if k.Digest() != before {
		t.Fatal("corrupt ops changed state")
	}
}

func TestKVSDigestDeterministic(t *testing.T) {
	a, b := NewKVS(), NewKVS()
	// Same content, inserted in different orders, must agree.
	a.Execute(1, EncodePut("x", []byte("1")))
	a.Execute(1, EncodePut("y", []byte("2")))
	b.Execute(2, EncodePut("y", []byte("2")))
	b.Execute(2, EncodePut("x", []byte("1")))
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on insertion order")
	}
	b.Execute(2, EncodePut("x", []byte("other")))
	if a.Digest() == b.Digest() {
		t.Fatal("digest insensitive to values")
	}
}

func TestKVSSnapshotRestore(t *testing.T) {
	k := NewKVS()
	for i := 0; i < 50; i++ {
		k.Execute(1, EncodePut(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))))
	}
	snap := k.Snapshot()
	restored := NewKVS()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Digest() != k.Digest() {
		t.Fatal("restored digest differs")
	}
	if v, ok := restored.Get("k7"); !ok || !bytes.Equal(v, []byte("v7")) {
		t.Fatalf("restored value = %q, %v", v, ok)
	}
	if err := NewKVS().Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestQuickKVSSnapshotRoundTrip(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte) bool {
		k := NewKVS()
		for i := range keys {
			v := []byte("v")
			if i < len(vals) {
				v = vals[i]
			}
			k.Execute(1, EncodePut(string(keys[i]), v))
		}
		r := NewKVS()
		if err := r.Restore(k.Snapshot()); err != nil {
			return false
		}
		return r.Digest() == k.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockchainSealsBlocksOfFive(t *testing.T) {
	var persisted [][]byte
	b := NewBlockchain(DefaultBlockSize, func(data []byte) error {
		persisted = append(persisted, data)
		return nil
	})
	for i := 0; i < 12; i++ {
		res := b.Execute(uint32(i), []byte(fmt.Sprintf("tx%d", i)))
		if bytes.Equal(res, NoOpResult) {
			t.Fatalf("tx %d rejected", i)
		}
	}
	if b.Height() != 2 {
		t.Fatalf("height = %d, want 2 (12 txs / 5 per block)", b.Height())
	}
	if len(persisted) != 2 {
		t.Fatalf("persisted %d blocks, want 2", len(persisted))
	}
	if err := VerifyChain(b.Headers()); err != nil {
		t.Fatalf("chain verification: %v", err)
	}
}

func TestBlockchainChainLinkage(t *testing.T) {
	b := NewBlockchain(2, nil)
	for i := 0; i < 6; i++ {
		b.Execute(1, []byte{byte(i)})
	}
	headers := b.Headers()
	if len(headers) != 3 {
		t.Fatalf("got %d blocks", len(headers))
	}
	// Tamper with a middle block.
	headers[1].TxRoot[0] ^= 1
	if err := VerifyChain(headers); err == nil {
		t.Fatal("tampered chain verified")
	}
	// Break linkage.
	headers = b.Headers()
	headers[2].PrevHash[0] ^= 1
	if err := VerifyChain(headers); err == nil {
		t.Fatal("broken linkage verified")
	}
}

func TestBlockchainEmptyOpIsNoOp(t *testing.T) {
	b := NewBlockchain(5, nil)
	if got := b.Execute(1, nil); !bytes.Equal(got, NoOpResult) {
		t.Fatalf("empty op = %q", got)
	}
	if b.Digest() != NewBlockchain(5, nil).Digest() {
		t.Fatal("no-op changed state")
	}
}

func TestBlockchainSnapshotRestore(t *testing.T) {
	b := NewBlockchain(3, nil)
	for i := 0; i < 10; i++ {
		b.Execute(1, []byte{byte(i)})
	}
	snap := b.Snapshot()
	r := NewBlockchain(3, nil)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if r.Digest() != b.Digest() {
		t.Fatal("restored digest differs")
	}
	if r.Height() != b.Height() {
		t.Fatalf("restored height %d != %d", r.Height(), b.Height())
	}
	// Continue executing on both: must stay in sync.
	b.Execute(2, []byte("next"))
	r.Execute(2, []byte("next"))
	if r.Digest() != b.Digest() {
		t.Fatal("divergence after restore")
	}
	// Tampered snapshot must be rejected (chain verification).
	bad := b.Snapshot()
	bad[12] ^= 0xff
	if err := NewBlockchain(3, nil).Restore(bad); err == nil {
		t.Fatal("tampered snapshot accepted")
	}
}

func TestBlockchainDeterminism(t *testing.T) {
	a := NewBlockchain(5, nil)
	b := NewBlockchain(5, nil)
	for i := 0; i < 23; i++ {
		op := []byte(fmt.Sprintf("op-%d", i))
		a.Execute(uint32(i%3), op)
		b.Execute(uint32(i%3), op)
		if a.Digest() != b.Digest() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestBlockchainPersistFailureDoesNotDiverge(t *testing.T) {
	failing := NewBlockchain(2, func([]byte) error { return fmt.Errorf("disk full") })
	healthy := NewBlockchain(2, nil)
	for i := 0; i < 6; i++ {
		failing.Execute(1, []byte{byte(i)})
		healthy.Execute(1, []byte{byte(i)})
	}
	if failing.Digest() != healthy.Digest() {
		t.Fatal("persist failure changed replicated state")
	}
}

func TestQuickBlockchainNeverPanicsOnGarbageRestore(t *testing.T) {
	f := func(data []byte) bool {
		b := NewBlockchain(5, nil)
		_ = b.Restore(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKVSPut(b *testing.B) {
	k := NewKVS()
	op := EncodePut("key", bytes.Repeat([]byte("v"), 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Execute(1, op)
	}
}

func BenchmarkBlockchainExecute(b *testing.B) {
	c := NewBlockchain(DefaultBlockSize, nil)
	op := bytes.Repeat([]byte("t"), 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Execute(1, op)
	}
}
