package app

import (
	"fmt"
	"sort"
	"sync"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// KVS op codes.
const (
	opPut uint8 = iota + 1
	opGet
	opDelete
)

// KVS is the trusted key-value store application from the paper's first use
// case. Operations are PUT/GET/DELETE encoded with EncodePut and friends.
type KVS struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewKVS returns an empty key-value store.
func NewKVS() *KVS { return &KVS{data: make(map[string][]byte)} }

// EncodePut encodes a PUT operation.
func EncodePut(key string, value []byte) []byte {
	e := messages.NewEncoder(9 + len(key) + len(value))
	e.U8(opPut)
	e.VarBytes([]byte(key))
	e.VarBytes(value)
	return e.Bytes()
}

// EncodeGet encodes a GET operation.
func EncodeGet(key string) []byte {
	e := messages.NewEncoder(5 + len(key))
	e.U8(opGet)
	e.VarBytes([]byte(key))
	return e.Bytes()
}

// IsRead reports whether op is a read-only KVS operation (a GET). Reads
// may legitimately execute more than once — identical GETs from one client
// are identical requests — so exactly-once checkers skip them.
func IsRead(op []byte) bool { return len(op) > 0 && op[0] == opGet }

// EncodeDelete encodes a DELETE operation.
func EncodeDelete(key string) []byte {
	e := messages.NewEncoder(5 + len(key))
	e.U8(opDelete)
	e.VarBytes([]byte(key))
	return e.Bytes()
}

// Execute implements Application.
func (k *KVS) Execute(_ uint32, op []byte) []byte {
	k.mu.Lock()
	defer k.mu.Unlock()
	d := messages.NewDecoder(op)
	code := d.U8()
	switch code {
	case opPut:
		key := d.VarBytes()
		val := d.VarBytes()
		if d.Finish() != nil {
			return NoOpResult
		}
		k.data[string(key)] = val
		return []byte("OK")
	case opGet:
		key := d.VarBytes()
		if d.Finish() != nil {
			return NoOpResult
		}
		val, ok := k.data[string(key)]
		if !ok {
			return []byte("NOTFOUND")
		}
		out := make([]byte, len(val))
		copy(out, val)
		return out
	case opDelete:
		key := d.VarBytes()
		if d.Finish() != nil {
			return NoOpResult
		}
		delete(k.data, string(key))
		return []byte("OK")
	default:
		return NoOpResult
	}
}

// ExecuteRead implements ReadExecutor: GETs are side-effect-free and may be
// served from a lease-holding replica without ordering; every other op code
// (including malformed operations, which Execute turns into a no-op write of
// an error result) must go through agreement.
func (k *KVS) ExecuteRead(_ uint32, op []byte) ([]byte, bool) {
	d := messages.NewDecoder(op)
	if d.U8() != opGet {
		return nil, false
	}
	key := d.VarBytes()
	if d.Finish() != nil {
		return nil, false
	}
	k.mu.RLock()
	defer k.mu.RUnlock()
	val, ok := k.data[string(key)]
	if !ok {
		return []byte("NOTFOUND"), true
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, true
}

// Len returns the number of stored keys.
func (k *KVS) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.data)
}

// Get reads a key directly (test helper; not part of the replicated API).
func (k *KVS) Get(key string) ([]byte, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	v, ok := k.data[key]
	return v, ok
}

// Digest implements Application: a hash over the sorted key/value pairs.
func (k *KVS) Digest() crypto.Digest {
	k.mu.RLock()
	defer k.mu.RUnlock()
	keys := make([]string, 0, len(k.data))
	for key := range k.data {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	e := messages.NewEncoder(64 * len(keys))
	for _, key := range keys {
		e.VarBytes([]byte(key))
		e.VarBytes(k.data[key])
	}
	return crypto.HashData(e.Bytes())
}

// Snapshot implements Application.
func (k *KVS) Snapshot() []byte {
	k.mu.RLock()
	defer k.mu.RUnlock()
	keys := make([]string, 0, len(k.data))
	for key := range k.data {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	e := messages.NewEncoder(64 * len(keys))
	e.U32(uint32(len(keys)))
	for _, key := range keys {
		e.VarBytes([]byte(key))
		e.VarBytes(k.data[key])
	}
	return e.Bytes()
}

// Restore implements Application.
func (k *KVS) Restore(snapshot []byte) error {
	d := messages.NewDecoder(snapshot)
	n := d.Count(1 << 24)
	data := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		key := d.VarBytes()
		val := d.VarBytes()
		if d.Err() != nil {
			break
		}
		data[string(key)] = val
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("kvs restore: %w", err)
	}
	k.mu.Lock()
	k.data = data
	k.mu.Unlock()
	return nil
}
