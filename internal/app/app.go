// Package app defines the replicated application interface executed inside
// the Execution compartment, and the two applications the paper evaluates
// (§6): a key-value store and a blockchain (distributed ledger).
package app

import (
	"github.com/splitbft/splitbft/internal/crypto"
)

// Application is a deterministic state machine replicated by the ordering
// protocol. It runs inside the Execution enclave: its state never leaves
// the trusted boundary unencrypted.
//
// Implementations need not be safe for concurrent use; the Execution
// compartment is single-threaded (paper §5: one thread per enclave).
type Application interface {
	// Execute applies one client operation and returns the result. Corrupt
	// or malformed operations must execute as a no-op with an error result
	// rather than failing (paper §4.1: "When clients submit corrupted
	// operations, the Execution Compartment will detect this and execute a
	// no-op instead").
	Execute(clientID uint32, op []byte) []byte
	// Digest returns a deterministic digest of the current state, used in
	// Checkpoint messages. Replicas with equal histories must produce equal
	// digests.
	Digest() crypto.Digest
	// Snapshot serializes the full state for state transfer.
	Snapshot() []byte
	// Restore replaces the state from a Snapshot.
	Restore(snapshot []byte) error
}

// NoOpResult is the reply payload returned for corrupted operations.
var NoOpResult = []byte("ERR no-op")

// ReadExecutor is implemented by applications whose read-only operations
// can be answered without ordering them — the hook the lease-anchored
// local read fast path dispatches through. ExecuteRead must return
// ok=false for any operation that is not provably side-effect-free (the
// Execution compartment then refuses the local read and the client falls
// back to the agreement path); returning ok=true for a mutating operation
// would let un-ordered requests fork replica state. Applications that do
// not implement the interface never serve local reads.
type ReadExecutor interface {
	ExecuteRead(clientID uint32, op []byte) (result []byte, ok bool)
}

// Persister is implemented by applications that durably persist state to
// untrusted storage. The Execution compartment detects it at replica
// construction and installs a PersistFunc that seals (encrypts) the data
// under the enclave sealing key and writes it through an ocall — the §6
// "one ocall per block" path. Applications that don't implement Persister
// keep all state in enclave memory.
type Persister interface {
	Application
	// SetPersist installs the sealed-write callback. It is called once,
	// before the replica starts processing; a nil func disables
	// persistence.
	SetPersist(PersistFunc)
}
