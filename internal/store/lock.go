package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir's LOCK file. Exactly one
// live process may own a store directory: a second owner — an operator
// starting the same replica twice, or a supervisor restart racing a stale
// process — would interleave appends into one segment chain and corrupt
// the WAL beyond what recovery can repair. The lock is released by closing
// the file (Close/Crash) and by the OS when the process dies, so a crashed
// owner never wedges its successor.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
