package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tamperSetup produces a store directory with a snapshot at record 4 and
// a WAL extending to record 8, cleanly closed — so the sealed tail marker
// pins record 8 as durable.
func tamperSetup(t *testing.T) (dir string, sealer Sealer) {
	t.Helper()
	dir = t.TempDir()
	sealer = sessionSealer{key: testKey(5)}
	s, _, err := Open(dir, syncOpts(sealer))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, s, record(i))
	}
	if err := s.WriteSnapshot([]byte("state@4")); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		mustAppend(t, s, record(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, sealer
}

// TestTailRollbackSegmentDeleted: deleting the WAL segment rolls the
// recoverable history back to the snapshot. Without the marker this is
// indistinguishable from a crash right after the snapshot; with it, the
// pinned durable extent exposes the missing records.
func TestTailRollbackSegmentDeleted(t *testing.T) {
	dir, sealer := tamperSetup(t)
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = Open(dir, syncOpts(sealer))
	if !errors.Is(err, ErrTailRollback) {
		t.Fatalf("rolled-back WAL recovered with err=%v, want ErrTailRollback", err)
	}
}

// TestTailRollbackTruncatedSegment: chopping bytes off the newest segment
// normally reads as the torn tail of an honest crash and is silently
// dropped. The marker turns that into a detected rollback: the dropped
// records were proven durable, so an honest crash cannot have lost them.
func TestTailRollbackTruncatedSegment(t *testing.T) {
	dir, sealer := tamperSetup(t)
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	seg := segs[len(segs)-1]
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, syncOpts(sealer))
	if !errors.Is(err, ErrTailRollback) {
		t.Fatalf("truncated WAL recovered with err=%v, want ErrTailRollback", err)
	}
}

// TestTailMarkerTamperRefused: the marker is sealed under the enclave
// sealing key precisely so a rollback adversary cannot rewrite it to
// match a truncated log. Any bit flip must refuse recovery.
func TestTailMarkerTamperRefused(t *testing.T) {
	dir, sealer := tamperSetup(t)
	path := filepath.Join(dir, tailMarkName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, syncOpts(sealer)); err == nil {
		t.Fatal("tampered tail marker accepted")
	}
}

// TestHonestCrashNotFlagged: a SIGKILL loses only the un-fsynced tail,
// which the marker never covered — recovery must succeed, and the
// reopened store must keep working across further marker refreshes.
func TestHonestCrashNotFlagged(t *testing.T) {
	dir := t.TempDir()
	sealer := sessionSealer{key: testKey(6)}
	// A huge flush interval keeps post-snapshot appends in the buffer so
	// the simulated crash genuinely loses them.
	s, _, err := Open(dir, Options{Sealer: sealer, FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, s, record(i))
	}
	if err := s.WriteSnapshot([]byte("state@4")); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		mustAppend(t, s, record(i))
	}
	s.Crash()

	s2, rec, err := Open(dir, Options{Sealer: sealer, FsyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("honest crash flagged as rollback: %v", err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d un-fsynced records after crash", len(rec.Records))
	}
	// Life goes on: new appends, a new snapshot (marker refresh), a clean
	// close and a clean reopen.
	for i := 4; i < 10; i++ {
		mustAppend(t, s2, record(i))
	}
	if err := s2.WriteSnapshot([]byte("state@10")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, _, err := Open(dir, syncOpts(sealer))
	if err != nil {
		t.Fatalf("reopen after marker refresh: %v", err)
	}
	s3.Close()
}
