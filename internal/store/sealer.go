package store

// Sealer encrypts data before it reaches untrusted storage and decrypts it
// on recovery. In a deployment the sealer is the compartment's enclave
// (tee.Enclave satisfies the interface): records and snapshots are AEAD-
// sealed under the enclave sealing key, which is derived from the enclave
// identity key stream, so only a restarted enclave with the same identity
// can read the store back. Unseal must fail on any tampered input — the
// store treats an unseal failure as corruption and refuses recovery.
type Sealer interface {
	Seal(data []byte) ([]byte, error)
	Unseal(sealed []byte) ([]byte, error)
}

// NopSealer stores plaintext. It exists for tests and for benchmarks that
// isolate the file-system cost of the log from the sealing cost.
type NopSealer struct{}

// Seal implements Sealer by returning data unchanged.
func (NopSealer) Seal(data []byte) ([]byte, error) { return data, nil }

// Unseal implements Sealer by returning sealed unchanged.
func (NopSealer) Unseal(sealed []byte) ([]byte, error) { return sealed, nil }
