package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
)

// sessionSealer seals with AES-GCM under a fixed key — the test stand-in
// for an enclave sealing key.
type sessionSealer struct{ key crypto.SessionKey }

func (s sessionSealer) session() *crypto.Session {
	sess, err := crypto.NewSession(s.key, 2)
	if err != nil {
		panic(err)
	}
	return sess
}

func (s sessionSealer) Seal(data []byte) ([]byte, error) {
	return s.session().SealRandom(data, nil)
}

func (s sessionSealer) Unseal(sealed []byte) ([]byte, error) {
	return s.session().Open(sealed, nil)
}

func testKey(b byte) crypto.SessionKey {
	var k crypto.SessionKey
	for i := range k {
		k[i] = b
	}
	return k
}

// syncOpts flushes on every append so tests see bytes on disk immediately.
func syncOpts(sealer Sealer) Options {
	return Options{Sealer: sealer, FsyncInterval: -1}
}

func mustAppend(t *testing.T, s *Store, payload []byte) uint64 {
	t.Helper()
	idx, err := s.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func record(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records))
	}
	for i := 0; i < 10; i++ {
		if idx := mustAppend(t, s, record(i)); idx != uint64(i+1) {
			t.Fatalf("record %d got index %d", i, idx)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec.Records))
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, record(i)) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
	// Appends continue after the recovered log.
	if idx := mustAppend(t, s2, record(10)); idx != 11 {
		t.Fatalf("post-recovery append got index %d, want 11", idx)
	}
}

func TestSnapshotReplayAndGC(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so GC has something to collect.
	opts := Options{FsyncInterval: -1, SegmentSize: 128}
	s, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, s, record(i))
	}
	if err := s.WriteSnapshot([]byte("state@20")); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 25; i++ {
		mustAppend(t, s, record(i))
	}
	// A second snapshot supersedes the first; with keepSnapshots=2 both
	// stay, and segments below the first snapshot are collected.
	if err := s.WriteSnapshot([]byte("state@25")); err != nil {
		t.Fatal(err)
	}
	for i := 25; i < 28; i++ {
		mustAppend(t, s, record(i))
	}
	if st := s.Stats(); st.SnapshotIndex != 25 {
		t.Fatalf("snapshot index = %d, want 25", st.SnapshotIndex)
	}
	s.Close()

	s2, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !bytes.Equal(rec.Snapshot, []byte("state@25")) || rec.SnapshotIndex != 25 {
		t.Fatalf("recovered snapshot %q @%d", rec.Snapshot, rec.SnapshotIndex)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d post-snapshot records, want 3", len(rec.Records))
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, record(25+i)) {
			t.Fatalf("replay record %d = %q", i, r)
		}
	}
	// GC actually removed early segments: the first remaining segment must
	// start at or after a record covered by the oldest retained snapshot.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}
	first, ok := parseIndexedName(filepath.Base(segs[0]), segPrefix, segSuffix)
	if !ok || first == 1 {
		t.Fatalf("GC kept the genesis segment (first=%d)", first)
	}
}

func TestRecoverTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, s, record(i))
	}
	// Die abruptly: a clean Close would refresh the tail marker, and a
	// marker covering record 5 turns the truncation below into a detected
	// rollback rather than an honest torn tail.
	s.Crash()
	// Chop the newest segment mid-record: a torn frame, as a crash during
	// a write would leave.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %d", len(segs))
	}
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatalf("torn tail must recover cleanly: %v", err)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records, want 4 (torn 5th dropped)", len(rec.Records))
	}
	// The tear must have been repaired, not just tolerated: once new
	// appends open a newer segment, the old one is no longer the tail —
	// a leftover tear there would brick every subsequent Open as mid-log
	// corruption.
	mustAppend(t, s2, record(4))
	s2.Close()
	s3, rec, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatalf("open after post-tear appends: %v", err)
	}
	defer s3.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records after repair, want 5", len(rec.Records))
	}
}

func TestRecoverRefusesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, s, record(i))
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	data, _ := os.ReadFile(segs[0])
	data[segHeaderSize+recHeaderSize+2] ^= 0xff // flip a byte inside record 1
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, syncOpts(nil)); err == nil {
		t.Fatal("corrupt record was not refused")
	}
}

func TestRecoverRefusesCorruptLengthField(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, s, record(i))
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	data, _ := os.ReadFile(segs[0])
	// Blow up record 0's length field so the frame appears to extend past
	// EOF. Without a header CRC this would be misread as a torn tail and
	// "repaired" by truncating away four durable records.
	data[segHeaderSize+2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, syncOpts(nil)); err == nil {
		t.Fatal("corrupted length field was not refused")
	}
	// And nothing was truncated by the failed open.
	after, _ := os.ReadFile(segs[0])
	if len(after) != len(data) {
		t.Fatalf("failed recovery truncated the segment (%d -> %d bytes)", len(data), len(after))
	}
}

func TestRecoverRefusesHeaderIndexMismatch(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, s, record(i))
	}
	s.Close()
	// Corrupt the header's firstIndex (its integrity check is the
	// filename): a shifted index would silently replay records at wrong
	// positions, so it must be refused.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	data, _ := os.ReadFile(segs[0])
	data[8] ^= 0xff // low byte of firstIndex
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, syncOpts(nil)); err == nil {
		t.Fatal("segment with mismatched header index was not refused")
	}
}

func TestRecoverRefusesTruncatedMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{FsyncInterval: -1, SegmentSize: 64}
	s, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustAppend(t, s, record(i))
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) < 2 {
		t.Fatalf("want several segments, have %d", len(segs))
	}
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, opts); err == nil {
		t.Fatal("mid-log truncation was not refused")
	}
}

func TestSealedRecoveryWrongKeyRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(sessionSealer{key: testKey(1)}))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, []byte("sealed-record"))
	s.Close()

	// The right key round-trips.
	s2, rec, err := Open(dir, syncOpts(sessionSealer{key: testKey(1)}))
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], []byte("sealed-record")) {
		t.Fatalf("sealed round trip = %q", rec.Records)
	}
	// A different sealing key (another enclave identity) must be refused.
	if _, _, err := Open(dir, syncOpts(sessionSealer{key: testKey(2)})); err == nil {
		t.Fatal("unseal under the wrong identity succeeded")
	}
}

func TestSealedRecordsAreNotPlaintext(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(sessionSealer{key: testKey(7)}))
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("super-secret-compartment-state")
	mustAppend(t, s, secret)
	if err := s.WriteSnapshot([]byte("sealed-by-caller")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, secret) {
			t.Fatalf("%s contains the plaintext record", f.Name())
		}
	}
}

func TestOpenRefusesSecondOwner(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	// A second live owner would interleave appends into one segment chain.
	if _, _, err := Open(dir, syncOpts(nil)); err == nil {
		t.Fatal("second Open of a live store directory succeeded")
	}
	s.Close()
	// Close releases the lock; the next owner proceeds.
	s2, _, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

func TestCrashDropsUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	// Huge interval: nothing flushes unless Sync is called.
	s, _, err := Open(dir, Options{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, s, record(i))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 8; i++ {
		mustAppend(t, s, record(i)) // never flushed
	}
	s.Crash()
	if _, err := s.Append([]byte("late")); err == nil {
		t.Fatal("append accepted after crash")
	}
	s2, rec, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want the 3 flushed ones", len(rec.Records))
	}
	// The lost tail's indices are reused: the log stays gap-free.
	if idx := mustAppend(t, s2, record(3)); idx != 4 {
		t.Fatalf("post-crash append got index %d, want 4", idx)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, s, record(i))
	}
	if err := s.WriteSnapshot([]byte("snap-a")); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		mustAppend(t, s, record(i))
	}
	if err := s.WriteSnapshot([]byte("snap-b")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt the newest snapshot; recovery must fall back to the older
	// one and replay the records between them.
	path := filepath.Join(dir, snapshotName(6))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, syncOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !bytes.Equal(rec.Snapshot, []byte("snap-a")) || rec.SnapshotIndex != 4 {
		t.Fatalf("fallback snapshot = %q @%d", rec.Snapshot, rec.SnapshotIndex)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records after fallback, want 2", len(rec.Records))
	}
}

// BenchmarkWALAppend is the durability-path baseline: 1 KiB records,
// synchronous mode isolated from group-commit timing. The Sealed variant
// adds the AES-GCM sealing cost every record pays in a deployment.
func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 1024)
	bench := func(b *testing.B, sealer Sealer) {
		s, _, err := Open(b.TempDir(), Options{Sealer: sealer, FsyncInterval: DefaultFsyncInterval})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := s.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Plain", func(b *testing.B) { bench(b, nil) })
	b.Run("Sealed", func(b *testing.B) { bench(b, sessionSealer{key: testKey(9)}) })
}

// TestFaultInjectorWriteError pins that an injected write error trips the
// sticky-failure barrier exactly like a real device error: the store
// refuses all further writes and Failed() reports the cause.
func TestFaultInjectorWriteError(t *testing.T) {
	inj := &FaultInjector{}
	s, _, err := Open(t.TempDir(), Options{FsyncInterval: -1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected write error")
	inj.FailWrites(boom)
	if _, err := s.Append([]byte("doomed")); err == nil {
		t.Fatal("append succeeded past injected write error")
	}
	if inj.Injected() == 0 {
		t.Fatal("injector did not count the applied fault")
	}
	// Sticky: clearing the fault must not resurrect the store.
	inj.Clear()
	if _, err := s.Append([]byte("still doomed")); err == nil {
		t.Fatal("store recovered from sticky failure")
	}
	if s.Failed() == nil || !strings.Contains(s.Failed().Error(), "injected write error") {
		t.Fatalf("Failed() = %v, want injected cause", s.Failed())
	}
}

// TestFaultInjectorFsyncError pins the same sticky path via Sync.
func TestFaultInjectorFsyncError(t *testing.T) {
	inj := &FaultInjector{}
	s, _, err := Open(t.TempDir(), Options{FsyncInterval: time.Hour, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append([]byte("pending")); err != nil {
		t.Fatal(err)
	}
	inj.FailFsync(errors.New("injected fsync error"))
	if err := s.Sync(); err == nil {
		t.Fatal("sync succeeded past injected fsync error")
	}
	if s.Failed() == nil {
		t.Fatal("fsync fault did not stick")
	}
}

// TestFaultInjectorStall pins that a stall delays the flush but leaves the
// store healthy: records survive a reopen.
func TestFaultInjectorStall(t *testing.T) {
	inj := &FaultInjector{}
	dir := t.TempDir()
	s, _, err := Open(dir, Options{FsyncInterval: -1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	inj.Stall(30 * time.Millisecond)
	start := time.Now()
	if _, err := s.Append([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stalled append returned in %v, want ≥30ms", d)
	}
	if s.Failed() != nil {
		t.Fatalf("stall failed the store: %v", s.Failed())
	}
	inj.Clear()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec.Records) != 1 || string(rec.Records[0]) != "slow" {
		t.Fatalf("stalled record lost: %v", rec.Records)
	}
}
