package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Tail marker: the store's stand-in for a hardware monotonic counter.
//
// The WAL alone cannot tell an honest crash from an adversarial rollback:
// both present as "the log ends earlier than it once did". The marker
// pins the durable extent — the highest WAL index that has been fsynced —
// into a separate sealed, monotonically-advancing file, refreshed
// whenever a snapshot is written (the same moments the trusted counter
// position is sealed into the enclave state export). At recovery, a WAL
// whose durable extent falls short of the marker is refused with
// ErrTailRollback instead of silently replaying a truncated history.
//
// Honest limitation (see README): the marker lives on the same untrusted
// disk. An adversary who rolls back the WAL *and* the marker (and the
// snapshots) consistently presents a plausible older crash image that
// this simulation cannot distinguish; on real SGX the marker's value
// would be held in a hardware monotonic counter, which is exactly the
// gap this file is shaped to be replaced by. What the marker does defeat
// is the cheaper and far more common attack of truncating or deleting
// recent WAL segments alone.

// tailMarkName is the marker file, one per store directory.
const tailMarkName = "tailmark"

// ErrTailRollback is returned by Open when the recovered WAL ends before
// the durable extent pinned by the tail marker — records the store proved
// durable are missing, i.e. the log tail was rolled back.
var ErrTailRollback = errors.New("store: WAL tail rollback detected")

// encodeTailMark seals the durable extent. The index is sealed rather
// than CRC'd: a rollback adversary by definition edits files, so the
// marker's integrity must rest on the enclave sealing key, not on a
// checksum anyone can recompute.
func (s *Store) encodeTailMark(index uint64) ([]byte, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], index)
	return s.sealer.Seal(buf[:])
}

// writeTailMark durably records index as the new marker value. Callers
// guarantee monotonicity (see markTailLocked).
func (s *Store) writeTailMark(index uint64) error {
	sealed, err := s.encodeTailMark(index)
	if err != nil {
		return fmt.Errorf("store: seal tail marker: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, tailMarkName), sealed); err != nil {
		return fmt.Errorf("store: write tail marker: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// readTailMark loads the marker, returning (0, nil) when none exists —
// a fresh store, or a pre-marker directory layout. An unsealable marker
// is tampering (or the wrong sealing key) and fails recovery.
func (s *Store) readTailMark() (uint64, error) {
	sealed, err := os.ReadFile(filepath.Join(s.dir, tailMarkName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	pt, err := s.sealer.Unseal(sealed)
	if err != nil {
		return 0, fmt.Errorf("store: unseal tail marker: %w", err)
	}
	if len(pt) != 8 {
		return 0, fmt.Errorf("store: tail marker has %d payload bytes, want 8", len(pt))
	}
	return binary.LittleEndian.Uint64(pt), nil
}

// markTailLocked captures the current durable extent for a marker refresh
// if it advanced, returning (index, true) when a write is due. The caller
// performs the (fsync-heavy) writeTailMark outside the store mutex and
// MUST hold the flush invariant: every record up to the returned index is
// already fsynced. A failed write is retried at the next refresh point —
// the marker lags but never overstates, so recovery stays sound.
func (s *Store) markTailLocked() (uint64, bool) {
	if s.failed != nil {
		// failLocked discarded pending records that were never written;
		// nextIndex already counts them, so the formula below would
		// overstate the durable extent.
		return 0, false
	}
	durable := s.nextIndex - 1 - uint64(s.pendingCount)
	if durable <= s.tailMark {
		return 0, false
	}
	s.tailMark = durable
	return durable, true
}
