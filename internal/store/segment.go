package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
)

// On-disk layout of one WAL segment:
//
//	header:  magic u32 | version u32 | firstIndex u64
//	records: { length u32 | crc32(payload) u32 | crc32(hdr[0:8]) u32 | payload } *
//
// Records are sealed before framing, so the length and CRCs cover
// ciphertext. The frame header carries its own CRC: without it, a
// corrupted length field would read as "payload extends past EOF" and be
// misclassified as a torn tail — silently truncating durable records
// instead of refusing corruption. With it, the only remaining ambiguity
// is a partial frame at the very end of the *newest* segment, which is
// the normal artifact of a crash mid-write and is dropped; any CRC
// mismatch, or a partial frame in an older segment, refuses recovery.
const (
	segMagic      = 0x53424654 // "SBFT"
	segVersion    = 1
	segHeaderSize = 16
	recHeaderSize = 12
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".bin"
)

func segmentName(firstIndex uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstIndex, segSuffix)
}

func snapshotName(index uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, index, snapSuffix)
}

// parseIndexedName extracts the hex index from "<prefix><16 hex><suffix>".
func parseIndexedName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexPart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// appendFrame frames one sealed record into dst.
func appendFrame(dst, sealed []byte) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sealed)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(sealed))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:start+8]))
	return append(dst, sealed...)
}

// segmentHeader builds the 16-byte segment header.
func segmentHeader(firstIndex uint64) []byte {
	h := make([]byte, 0, segHeaderSize)
	h = binary.LittleEndian.AppendUint32(h, segMagic)
	h = binary.LittleEndian.AppendUint32(h, segVersion)
	h = binary.LittleEndian.AppendUint64(h, firstIndex)
	return h
}

// scanResult is one segment's scan outcome.
type scanResult struct {
	firstIndex uint64
	count      int   // valid records found
	truncated  bool  // a partial frame ended the segment early
	validBytes int64 // file offset just past the last intact record
}

// scanSegment reads every intact record of one segment, calling fn with the
// record's global index and sealed payload. It returns how far it got and
// whether the segment ended in a torn (partially written) frame. CRC
// mismatches are returned as errors — torn tails are not.
func scanSegment(path string, fn func(index uint64, sealed []byte) error) (scanResult, error) {
	var res scanResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if len(data) < segHeaderSize {
		return res, fmt.Errorf("store: segment %s: short header (%d bytes)", path, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != segMagic {
		return res, fmt.Errorf("store: segment %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segVersion {
		return res, fmt.Errorf("store: segment %s: unsupported version %d", path, v)
	}
	res.firstIndex = binary.LittleEndian.Uint64(data[8:16])
	off := segHeaderSize
	res.validBytes = int64(off)
	for {
		if off == len(data) {
			return res, nil // clean end
		}
		if len(data)-off < recHeaderSize {
			res.truncated = true
			return res, nil // torn frame header
		}
		hdr := data[off : off+recHeaderSize]
		if crc32.ChecksumIEEE(hdr[0:8]) != binary.LittleEndian.Uint32(hdr[8:12]) {
			return res, fmt.Errorf("store: segment %s: record %d frame header failed CRC",
				path, res.firstIndex+uint64(res.count))
		}
		n := int(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		off += recHeaderSize
		if len(data)-off < n {
			// The header checked out, so the length is trustworthy: the
			// payload genuinely ends past EOF — a torn write.
			res.truncated = true
			return res, nil
		}
		payload := data[off : off+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return res, fmt.Errorf("store: segment %s: record %d failed CRC",
				path, res.firstIndex+uint64(res.count))
		}
		off += n
		if fn != nil {
			if err := fn(res.firstIndex+uint64(res.count), payload); err != nil {
				return res, err
			}
		}
		res.count++
		res.validBytes = int64(off)
	}
}

// truncateDurably truncates path to size and fsyncs the result.
func truncateDurably(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// writeFileAtomic writes data to path via a temp file, fsync and rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// syncDir fsyncs a directory so renames and removals are durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
