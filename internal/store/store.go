// Package store implements the sealed durability subsystem: a
// per-compartment append-only write-ahead log plus snapshot store.
//
// Each compartment of a replica owns one Store. Every message delivered
// into the compartment's enclave is sealed (AEAD under the enclave sealing
// key) and appended to the log before the ecall runs; when the
// compartment's stable checkpoint advances, the enclave's sealed state
// export is written as a snapshot and older log segments are garbage
// collected. Recovery loads the newest intact snapshot and replays the
// records appended after it — the compartments are deterministic state
// machines, so replaying the post-snapshot input log reconstructs the
// pre-crash state up to the last durable record. Anything lost beyond that
// (the un-fsynced tail) is re-fetched from peers through the ordinary
// checkpoint/state-transfer path.
//
// Writes are group-committed: appends land in a memory buffer and a
// committer goroutine flushes and fsyncs them on a short interval, so one
// fsync covers many records (uBFT-style bounded-log engineering). The
// broker additionally calls Sync before letting an invocation's outputs
// escape, so the interval fully amortizes only output-free traffic —
// with ecall batching, one Sync still covers a whole delivered batch.
// Crash simulation (Store.Crash) discards the unflushed buffer, modeling
// the tail a SIGKILL would lose.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"
)

// Defaults for Options fields left zero.
const (
	// DefaultSegmentSize rotates the log every 4 MiB.
	DefaultSegmentSize = 4 << 20
	// DefaultFsyncInterval is the group-commit flush period.
	DefaultFsyncInterval = 2 * time.Millisecond
	// keepSnapshots is how many snapshot generations survive GC; keeping
	// two means a corrupt newest snapshot can still fall back one
	// generation with full WAL coverage.
	keepSnapshots = 2
)

// ErrClosed is returned by operations on a closed or crashed store.
var ErrClosed = errors.New("store: closed")

// Options parameterizes Open.
type Options struct {
	// Sealer encrypts records before they reach disk and decrypts them on
	// recovery. Nil stores plaintext (NopSealer).
	Sealer Sealer
	// SegmentSize is the rotation threshold in bytes. 0 means
	// DefaultSegmentSize.
	SegmentSize int
	// FsyncInterval is the group-commit period. 0 means
	// DefaultFsyncInterval; negative flushes and fsyncs on every append
	// (synchronous mode, for tests and benchmarks).
	FsyncInterval time.Duration
	// Faults, when non-nil, injects disk failures (write error, fsync
	// error, slow-disk stall) into the flush path for chaos testing.
	Faults *FaultInjector
}

// Recovered is what Open reconstructed from disk.
type Recovered struct {
	// Snapshot is the newest intact snapshot, verbatim as written (the
	// caller sealed it; the caller unseals it). Nil when none exists.
	Snapshot []byte
	// SnapshotIndex is the WAL index the snapshot covers through.
	SnapshotIndex uint64
	// Records are the unsealed WAL records after SnapshotIndex, in append
	// order, ready to be replayed through the enclave.
	Records [][]byte
}

// segMeta tracks one on-disk segment holding records [first, next).
type segMeta struct{ first, next uint64 }

// Store is one compartment's durable log + snapshot directory. All methods
// are safe for concurrent use, though in practice a single dispatcher
// thread appends.
type Store struct {
	dir      string
	lock     *os.File // flock'd LOCK file: exactly one live owner per directory
	sealer   Sealer
	segSize  int
	interval time.Duration
	inj      *FaultInjector // nil when no chaos fault injection

	mu           sync.Mutex
	pending      []byte // framed records awaiting flush
	pendingFirst uint64
	pendingCount int
	nextIndex    uint64 // 1-based index of the next record to append
	f            *os.File
	fSize        int
	segs         []segMeta
	snaps        []uint64 // snapshot WAL indices on disk, ascending
	crashed      bool
	closed       bool
	// failed is sticky: after a segment write error the file may hold a
	// partial frame at an unknown offset, so retrying the same buffer
	// would interleave garbage mid-segment — the one corruption shape
	// recovery cannot repair. The store refuses all further writes
	// instead; the abandoned partial frame reads as an ordinary torn
	// tail on the next Open.
	failed error

	// tailMark is the in-memory high-water mark of the sealed tail marker
	// (see tailmark.go). It may run ahead of the on-disk marker after a
	// failed refresh; the next refresh rewrites it — the marker lags but
	// never overstates the durable extent, so recovery stays sound.
	tailMark uint64

	appended uint64
	flushed  uint64
	fsyncs   uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Appended      uint64 // records accepted by Append
	Flushed       uint64 // records written to the OS
	Fsyncs        uint64 // fsync calls issued
	Segments      int    // segments currently on disk
	NextIndex     uint64 // index the next Append will get
	SnapshotIndex uint64 // WAL index of the newest snapshot
}

// Open opens (creating if necessary) the store in dir and recovers its
// contents: the newest intact snapshot plus the unsealed records after it.
// Corruption — a CRC failure, an unsealable record, a gap in the segment
// chain, or a truncation anywhere but the tail of the newest segment — is
// refused with an error rather than silently skipped. A torn frame at the
// very end of the newest segment is the normal artifact of a crash and is
// dropped.
func Open(dir string, o Options) (*Store, *Recovered, error) {
	if o.Sealer == nil {
		o.Sealer = NopSealer{}
	}
	if o.SegmentSize == 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.FsyncInterval == 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:      dir,
		lock:     lock,
		sealer:   o.Sealer,
		segSize:  o.SegmentSize,
		interval: o.FsyncInterval,
		inj:      o.Faults,
		stopCh:   make(chan struct{}),
	}
	rec, err := s.recover()
	if err != nil {
		s.unlock()
		return nil, nil, err
	}
	if s.interval > 0 {
		s.wg.Add(1)
		go s.committer()
	}
	return s, rec, nil
}

// recover scans the directory, fills in the Store's append position and
// segment bookkeeping, and returns the recovered snapshot and records.
func (s *Store) recover() (*Recovered, error) {
	rec := &Recovered{}

	// Newest intact snapshot wins; corrupt ones are removed so the
	// fallback is deterministic on the next open too.
	snaps, err := listSnapshots(s.dir)
	if err != nil {
		return nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		idx, data, err := readSnapshot(filepath.Join(s.dir, snapshotName(snaps[i])))
		if err == nil {
			rec.Snapshot = data
			rec.SnapshotIndex = idx
			s.snaps = append([]uint64(nil), snaps[:i+1]...)
			break
		}
		if !errors.Is(err, errSnapshotCorrupt) {
			// A transient read failure is not corruption: deleting the
			// file here would destroy an intact snapshot we merely could
			// not read right now.
			return nil, err
		}
		removeSnapshot(s.dir, snaps[i])
	}

	// Scan the segment chain in index order.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		if idx, ok := parseIndexedName(e.Name(), segPrefix, segSuffix); ok {
			firsts = append(firsts, idx)
		}
	}
	slices.Sort(firsts)
	for i, first := range firsts {
		path := filepath.Join(s.dir, segmentName(first))
		res, err := scanSegment(path, func(idx uint64, sealed []byte) error {
			if idx <= rec.SnapshotIndex {
				return nil // already covered by the snapshot
			}
			pt, err := s.sealer.Unseal(sealed)
			if err != nil {
				return fmt.Errorf("store: unseal record %d: %w", idx, err)
			}
			rec.Records = append(rec.Records, pt)
			return nil
		})
		if err != nil {
			return nil, err
		}
		// The header's firstIndex has no CRC of its own; the filename
		// (written from the same value) is its integrity check. A
		// mismatch would silently shift every record's index — refuse it
		// like any other corruption.
		if res.firstIndex != first {
			return nil, fmt.Errorf("store: segment %s header claims first record %d",
				segmentName(first), res.firstIndex)
		}
		if i > 0 && res.firstIndex != s.segs[len(s.segs)-1].next {
			return nil, fmt.Errorf("store: gap in WAL: segment starts at record %d, want %d",
				res.firstIndex, s.segs[len(s.segs)-1].next)
		}
		if res.truncated {
			if i != len(firsts)-1 {
				return nil, fmt.Errorf("store: segment %s truncated mid-log", segmentName(first))
			}
			// Repair the crash artifact: chop the torn frame off so the
			// segment scans clean on every later Open — once new appends
			// create a newer segment, this one is no longer "the tail"
			// and a leftover tear would read as mid-log corruption. The
			// repair itself must be durable for the same reason: a crash
			// that loses the truncation resurrects the tear mid-log.
			if err := truncateDurably(path, res.validBytes); err != nil {
				return nil, fmt.Errorf("store: repair torn segment %s: %w", segmentName(first), err)
			}
			syncDir(s.dir)
		}
		s.segs = append(s.segs, segMeta{first: res.firstIndex, next: res.firstIndex + uint64(res.count)})
	}

	if len(s.segs) > 0 {
		if s.segs[0].first > rec.SnapshotIndex+1 {
			return nil, fmt.Errorf("store: WAL starts at record %d but snapshot covers only through %d",
				s.segs[0].first, rec.SnapshotIndex)
		}
		s.nextIndex = s.segs[len(s.segs)-1].next
	} else {
		s.nextIndex = rec.SnapshotIndex + 1
	}
	if s.nextIndex == 0 {
		s.nextIndex = 1
	}

	// Rollback detection: the sealed tail marker pins the durable extent
	// the directory once proved. A recovered WAL that ends short of it is
	// missing fsynced records — an honest crash cannot produce that, only
	// a rolled-back (truncated or partially deleted) log can.
	mark, err := s.readTailMark()
	if err != nil {
		return nil, err
	}
	if extent := s.nextIndex - 1; mark > extent {
		return nil, fmt.Errorf("%w: marker pins durable record %d, recovered log ends at %d",
			ErrTailRollback, mark, extent)
	}
	s.tailMark = mark

	// Appends never continue into a recovered segment (its tail may be
	// torn); a fresh segment is created at nextIndex on the first flush.
	// An empty recovered segment at that index would collide by name, so
	// drop it.
	if n := len(s.segs); n > 0 && s.segs[n-1].first == s.segs[n-1].next {
		_ = os.Remove(filepath.Join(s.dir, segmentName(s.segs[n-1].first)))
		s.segs = s.segs[:n-1]
	}
	return rec, nil
}

// Append seals payload and adds it to the log, returning the record's
// index. The record becomes durable at the next group commit (or
// immediately in synchronous mode).
func (s *Store) Append(payload []byte) (uint64, error) {
	sealed, err := s.sealer.Seal(payload)
	if err != nil {
		// A seal failure skips a record mid-log, which is as bad as a
		// write failure: it must trip the sticky barrier so the broker's
		// pre-route Sync sees it and suppresses the enclave outputs.
		s.mu.Lock()
		defer s.mu.Unlock()
		return 0, s.failLocked(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.crashed {
		return 0, ErrClosed
	}
	if s.failed != nil {
		return 0, s.failed
	}
	if len(s.pending) == 0 {
		s.pendingFirst = s.nextIndex
	}
	s.pending = appendFrame(s.pending, sealed)
	s.pendingCount++
	idx := s.nextIndex
	s.nextIndex++
	s.appended++
	if s.interval < 0 {
		if err := s.flushLocked(); err != nil {
			return idx, err
		}
	}
	return idx, nil
}

// Sync forces a group commit: all appended records are written and fsynced
// before it returns.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.crashed {
		return ErrClosed
	}
	return s.flushLocked()
}

// flushLocked writes the pending buffer to the current segment, fsyncs,
// and rotates when the segment exceeds the size threshold. Any write
// error fails the store permanently (see Store.failed).
func (s *Store) flushLocked() error {
	if s.failed != nil {
		return s.failed
	}
	if len(s.pending) == 0 {
		return nil
	}
	// Chaos injection points: a stall holds the store lock for the
	// duration (a degraded device stalls every appender), and injected
	// errors take the same sticky-failure path as real device errors.
	if d := s.inj.stallFor(); d > 0 {
		time.Sleep(d)
	}
	if err := s.inj.writeFault(); err != nil {
		return s.failLocked(err)
	}
	if s.f == nil {
		first := s.pendingFirst
		f, err := os.OpenFile(filepath.Join(s.dir, segmentName(first)),
			os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return s.failLocked(err)
		}
		if _, err := f.Write(segmentHeader(first)); err != nil {
			f.Close()
			return s.failLocked(err)
		}
		s.f = f
		s.fSize = segHeaderSize
		s.segs = append(s.segs, segMeta{first: first, next: first})
		syncDir(s.dir)
	}
	if _, err := s.f.Write(s.pending); err != nil {
		return s.failLocked(err)
	}
	s.fSize += len(s.pending)
	s.flushed += uint64(s.pendingCount)
	s.segs[len(s.segs)-1].next = s.nextIndex
	s.pending = s.pending[:0]
	s.pendingCount = 0
	if err := s.inj.fsyncFault(); err != nil {
		return s.failLocked(err)
	}
	if err := s.f.Sync(); err != nil {
		return s.failLocked(err)
	}
	s.fsyncs++
	if s.fSize >= s.segSize {
		_ = s.f.Close()
		s.f = nil
	}
	return nil
}

// failLocked records the first write error, discards the pending buffer
// (how much of it reached the file is unknown) and closes the segment.
func (s *Store) failLocked(err error) error {
	if s.failed == nil {
		s.failed = fmt.Errorf("store: write failed, log disabled: %w", err)
	}
	s.pending = nil
	s.pendingCount = 0
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
	return s.failed
}

// WriteSnapshot records data (already sealed by the caller) as covering
// every record appended so far.
func (s *Store) WriteSnapshot(data []byte) error {
	s.mu.Lock()
	idx := s.nextIndex - 1
	s.mu.Unlock()
	return s.WriteSnapshotAt(data, idx)
}

// WriteSnapshotAt records data as covering the WAL through index, then
// garbage-collects log segments and snapshots it supersedes. The explicit
// index lets a caller capture the coverage point when the state was
// exported and perform the (fsync-heavy) write off its hot path: appends
// that happen in between are simply replayed on top at recovery. The WAL
// is flushed first so the snapshot never claims records that are not
// durable; a snapshot at or below the newest existing one is a no-op.
func (s *Store) WriteSnapshotAt(data []byte, index uint64) error {
	s.mu.Lock()
	if s.closed || s.crashed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	if index > s.nextIndex-1 {
		last := s.nextIndex - 1
		s.mu.Unlock()
		return fmt.Errorf("store: snapshot index %d beyond appended log (%d)", index, last)
	}
	if n := len(s.snaps); n > 0 && index <= s.snaps[n-1] {
		s.mu.Unlock()
		return nil // superseded (e.g. reordered background writes)
	}
	s.mu.Unlock()

	// The fsync-heavy part runs outside the lock: Append on the
	// dispatcher hot path must not stall behind a checkpoint-sized write.
	// The file is self-contained and named by its index, so nothing it
	// needs is guarded by the mutex.
	if err := writeFileAtomic(filepath.Join(s.dir, snapshotName(index)), encodeSnapshot(index, data)); err != nil {
		return err
	}
	syncDir(s.dir)

	s.mu.Lock()
	if s.closed || s.crashed {
		s.mu.Unlock()
		return ErrClosed // file is on disk but unrecorded; the next Open lists it anyway
	}
	var drop []string
	if n := len(s.snaps); n == 0 || index > s.snaps[n-1] {
		s.snaps = append(s.snaps, index)
		drop = s.gcPlanLocked()
	}
	// Snapshot time is also tail-marker time: flushLocked above fsynced
	// everything appended so far, so the durable extent moved and the
	// rollback-detection marker must pin the new position before GC makes
	// the old one the only evidence.
	mark, refresh := s.markTailLocked()
	s.mu.Unlock()
	if refresh {
		if err := s.writeTailMark(mark); err != nil {
			return err
		}
	}
	for _, path := range drop {
		_ = os.Remove(path)
	}
	if len(drop) > 0 {
		syncDir(s.dir)
	}
	return nil
}

// gcPlanLocked drops snapshots beyond the retention count and segments
// whose records are all covered by the oldest retained snapshot from the
// bookkeeping, returning the file paths to unlink. The caller removes
// them outside the lock — unlink plus the directory fsync would
// otherwise stall every Append for the duration. A crash between plan
// and removal only leaves orphan files the next Open re-lists and the
// next GC collects.
func (s *Store) gcPlanLocked() []string {
	var drop []string
	for len(s.snaps) > keepSnapshots {
		drop = append(drop, filepath.Join(s.dir, snapshotName(s.snaps[0])))
		s.snaps = s.snaps[1:]
	}
	if len(s.snaps) == 0 {
		return drop
	}
	keepFrom := s.snaps[0]
	kept := s.segs[:0]
	for i, m := range s.segs {
		// The last segment may be open for appends; never remove it.
		if i < len(s.segs)-1 && m.next-1 <= keepFrom {
			drop = append(drop, filepath.Join(s.dir, segmentName(m.first)))
			continue
		}
		kept = append(kept, m)
	}
	s.segs = kept
	return drop
}

// Crash simulates a SIGKILL: the unflushed group-commit buffer is
// discarded (that tail is what a real crash loses) and the store stops
// accepting writes. Already-fsynced data survives for the next Open.
func (s *Store) Crash() {
	s.mu.Lock()
	s.crashed = true
	s.pending = nil
	s.pendingCount = 0
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
	s.mu.Unlock()
	s.stopCommitter()
	s.unlock()
}

// Close flushes, fsyncs and closes the store. A clean shutdown also
// refreshes the tail marker so the whole log — not just the portion below
// the last snapshot — is rollback-protected across the restart.
func (s *Store) Close() error {
	s.mu.Lock()
	var err error
	var mark uint64
	var refresh bool
	if !s.closed && !s.crashed {
		err = s.flushLocked()
		if err == nil {
			mark, refresh = s.markTailLocked()
		}
	}
	s.closed = true
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
	s.mu.Unlock()
	if refresh {
		if werr := s.writeTailMark(mark); werr != nil && err == nil {
			err = werr
		}
	}
	s.stopCommitter()
	s.unlock()
	return err
}

func (s *Store) stopCommitter() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
}

func (s *Store) unlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock != nil {
		_ = s.lock.Close() // closing releases the flock
		s.lock = nil
	}
}

// Failed returns the store's sticky failure, nil while it is healthy. A
// failed store refuses all further writes (see the failed field); the
// health endpoint reports it so an operator learns the compartment went
// mute on durability grounds rather than guessing from silence.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Appended:  s.appended,
		Flushed:   s.flushed,
		Fsyncs:    s.fsyncs,
		Segments:  len(s.segs),
		NextIndex: s.nextIndex,
	}
	if len(s.snaps) > 0 {
		st.SnapshotIndex = s.snaps[len(s.snaps)-1]
	}
	return st
}
