package store

import (
	"sync"
	"time"
)

// FaultInjector injects disk-level failures into a Store: write errors,
// fsync errors, and slow-disk stalls. It exists for chaos testing the
// sticky-failure/write-ahead-barrier path — a store whose injector reports
// a write or fsync error fails permanently, exactly as it would on a real
// device error, and the broker's pre-route Sync then suppresses enclave
// outputs (availability loss, never safety).
//
// One injector may be shared by several stores (the facade hands the same
// injector to all three compartment stores of a replica). A nil
// *FaultInjector is inert, so the hook costs nothing when unused.
type FaultInjector struct {
	mu       sync.Mutex
	writeErr error
	fsyncErr error
	stall    time.Duration
	injected uint64
}

// FailWrites makes every subsequent segment write fail with err
// (nil re-arms nothing and clears the write fault).
func (i *FaultInjector) FailWrites(err error) {
	i.mu.Lock()
	i.writeErr = err
	i.mu.Unlock()
}

// FailFsync makes every subsequent fsync fail with err (nil clears).
func (i *FaultInjector) FailFsync(err error) {
	i.mu.Lock()
	i.fsyncErr = err
	i.mu.Unlock()
}

// Stall makes every subsequent flush sleep for d before touching the
// device, modelling a degraded disk. Zero clears the stall.
func (i *FaultInjector) Stall(d time.Duration) {
	i.mu.Lock()
	i.stall = d
	i.mu.Unlock()
}

// Clear removes all configured faults. It does not resurrect a store that
// already failed: sticky failure is the semantics under test.
func (i *FaultInjector) Clear() {
	i.mu.Lock()
	i.writeErr, i.fsyncErr, i.stall = nil, nil, 0
	i.mu.Unlock()
}

// Injected returns how many faults (errors and stalls) have actually been
// applied to store operations.
func (i *FaultInjector) Injected() uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}

// writeFault returns the configured write error, if any. Nil-safe.
func (i *FaultInjector) writeFault() error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.writeErr != nil {
		i.injected++
	}
	return i.writeErr
}

// fsyncFault returns the configured fsync error, if any. Nil-safe.
func (i *FaultInjector) fsyncFault() error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.fsyncErr != nil {
		i.injected++
	}
	return i.fsyncErr
}

// stallFor returns the configured flush stall. Nil-safe.
func (i *FaultInjector) stallFor() time.Duration {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.stall > 0 {
		i.injected++
	}
	return i.stall
}
