package store

import "time"

// committer is the group-commit loop: it flushes and fsyncs the pending
// buffer once per interval, so a burst of appends shares one fsync. The
// durability window this opens — records appended but not yet committed
// when the process dies — is exactly what Crash simulates, and what the
// recovery path closes through peer state transfer.
func (s *Store) committer() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.mu.Lock()
			if !s.closed && !s.crashed {
				_ = s.flushLocked()
			}
			s.mu.Unlock()
		}
	}
}
