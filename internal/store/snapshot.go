package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
)

// errSnapshotCorrupt marks a snapshot refused for its *content* (format or
// CRC). Only these may be deleted and fallen back from — a transient read
// error must propagate, or recovery would destroy intact snapshots it
// merely failed to read.
var errSnapshotCorrupt = errors.New("store: snapshot corrupt")

// Snapshot file layout:
//
//	magic u32 | version u32 | walIndex u64 | length u32 | crc32 u32 | data
//
// walIndex is the index of the last WAL record whose effect the snapshot
// state includes; recovery replays strictly newer records on top. The CRC
// covers walIndex and length as well as the data — a flipped walIndex
// passing validation would make replay silently skip the records between
// the real and claimed coverage point. The data is stored verbatim — the
// caller (the enclave runtime) seals it before handing it to the store,
// so sealing happens exactly once and inside the trusted boundary.
const snapHeaderSize = 24

// snapCRC covers the walIndex and length fields (bytes 8..20 of the
// header) plus the data.
func snapCRC(hdr, data []byte) uint32 {
	crc := crc32.ChecksumIEEE(hdr[8:20])
	return crc32.Update(crc, crc32.IEEETable, data)
}

// encodeSnapshot builds the snapshot file contents.
func encodeSnapshot(walIndex uint64, data []byte) []byte {
	out := make([]byte, 0, snapHeaderSize+len(data))
	out = binary.LittleEndian.AppendUint32(out, segMagic)
	out = binary.LittleEndian.AppendUint32(out, segVersion)
	out = binary.LittleEndian.AppendUint64(out, walIndex)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
	out = binary.LittleEndian.AppendUint32(out, snapCRC(out[:20], data))
	return append(out, data...)
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (walIndex uint64, data []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(raw) < snapHeaderSize {
		return 0, nil, fmt.Errorf("%w: %s: short header", errSnapshotCorrupt, path)
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != segMagic {
		return 0, nil, fmt.Errorf("%w: %s: bad magic", errSnapshotCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != segVersion {
		return 0, nil, fmt.Errorf("%w: %s: unsupported version %d", errSnapshotCorrupt, path, v)
	}
	walIndex = binary.LittleEndian.Uint64(raw[8:16])
	n := int(binary.LittleEndian.Uint32(raw[16:20]))
	sum := binary.LittleEndian.Uint32(raw[20:24])
	body := raw[snapHeaderSize:]
	if len(body) != n {
		return 0, nil, fmt.Errorf("%w: %s: truncated (%d of %d bytes)", errSnapshotCorrupt, path, len(body), n)
	}
	if snapCRC(raw[:20], body) != sum {
		return 0, nil, fmt.Errorf("%w: %s: failed CRC", errSnapshotCorrupt, path)
	}
	return walIndex, body, nil
}

// listSnapshots returns the WAL indices of all snapshot files in dir,
// sorted ascending.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if idx, ok := parseIndexedName(e.Name(), snapPrefix, snapSuffix); ok {
			out = append(out, idx)
		}
	}
	slices.Sort(out)
	return out, nil
}

// removeSnapshot deletes one snapshot file, ignoring absence.
func removeSnapshot(dir string, index uint64) {
	_ = os.Remove(filepath.Join(dir, snapshotName(index)))
}
