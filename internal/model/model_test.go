package model

import (
	"testing"
)

func TestNoFaultsManySchedules(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		w := NewWorld(Config{}, seed)
		if err := w.Run(); err != nil {
			t.Fatalf("seed %d: fault-free run violated safety: %v", seed, err)
		}
	}
}

func TestByzantinePrimaryPreparation(t *testing.T) {
	// The paper's key scenario: the primary's Preparation enclave is
	// Byzantine and equivocates. Safety must hold across many adversarial
	// schedules.
	cfg := Config{Byzantine: map[Kind][]int{Prep: {0}}}
	for seed := int64(0); seed < 200; seed++ {
		w := NewWorld(cfg, seed)
		if err := w.Run(); err != nil {
			t.Fatalf("seed %d: equivocating primary broke safety: %v", seed, err)
		}
	}
}

func TestOneByzantineEnclavePerType(t *testing.T) {
	// Figure 1: one faulty enclave of each type on different replicas —
	// three total faults with f=1 — must preserve safety.
	cfg := Config{Byzantine: map[Kind][]int{Prep: {1}, Conf: {2}, Exec: {3}}}
	for seed := int64(0); seed < 200; seed++ {
		w := NewWorld(cfg, seed)
		if err := w.Run(); err != nil {
			t.Fatalf("seed %d: per-type faults broke safety: %v", seed, err)
		}
	}
}

func TestByzantinePrimaryPlusConfAndExec(t *testing.T) {
	// Worst tolerated case: Byzantine primary prep, plus one Byzantine
	// conf and exec elsewhere.
	cfg := Config{Byzantine: map[Kind][]int{Prep: {0}, Conf: {1}, Exec: {2}}}
	for seed := int64(0); seed < 200; seed++ {
		w := NewWorld(cfg, seed)
		if err := w.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckerHasTeeth(t *testing.T) {
	// Sanity check on the checker itself: with f+1 = 2 Byzantine
	// Preparation enclaves (beyond the fault model), conflicting prepare
	// certificates must become constructible and the invariant must trip
	// on at least one schedule.
	cfg := Config{Byzantine: map[Kind][]int{Prep: {0, 1}}}
	violated := false
	for seed := int64(0); seed < 300 && !violated; seed++ {
		w := NewWorld(cfg, seed)
		if err := w.Run(); err != nil {
			violated = true
		}
	}
	if !violated {
		t.Fatal("checker failed to detect a violation with f+1 Byzantine Preparation enclaves")
	}
}

func TestByzantineConfCannotForgeDecision(t *testing.T) {
	// A single Byzantine Confirmation enclave can send arbitrary commits,
	// but a correct Execution enclave needs 2f+1 = 3 matching commits from
	// distinct senders — one forger plus two correct confs that themselves
	// required prepare certificates. Divergence must be impossible.
	cfg := Config{Byzantine: map[Kind][]int{Conf: {0}}}
	for seed := int64(0); seed < 200; seed++ {
		w := NewWorld(cfg, seed)
		if err := w.Run(); err != nil {
			t.Fatalf("seed %d: one Byzantine conf broke agreement: %v", seed, err)
		}
	}
}

func TestKindString(t *testing.T) {
	if Prep.String() != "prep" || Conf.String() != "conf" || Exec.String() != "exec" {
		t.Fatal("kind labels wrong")
	}
}

func BenchmarkScheduleExploration(b *testing.B) {
	cfg := Config{Byzantine: map[Kind][]int{Prep: {0}, Conf: {1}, Exec: {2}}, Steps: 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWorld(cfg, int64(i))
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
