// Package model is a randomized model-checking harness for SplitBFT's
// safety argument, standing in for the paper's Ivy proof (§4, DESIGN.md
// §2). It models each compartment as an abstract node — exactly how the
// Ivy proof treats enclaves, "as individual nodes", since a faulty
// environment removes any synchronization between co-located enclaves —
// and lets an adversary:
//
//   - control message delivery completely (drop, reorder, duplicate),
//   - corrupt up to f enclaves of each compartment type, which may then
//     send arbitrary protocol messages (equivocation, forged votes),
//
// while asserting the safety invariants of DESIGN.md §5: no two correct
// Execution enclaves decide different digests for the same sequence
// number, and no two conflicting prepare certificates form in the same
// view.
//
// Signatures are modeled as unforgeable: the adversary can make corrupted
// enclaves say anything, but cannot fabricate messages from correct ones —
// matching the system assumption that correct enclaves' keys do not leak.
package model

import (
	"fmt"
	"math/rand"
)

// Kind is a compartment type.
type Kind int

// The three compartment kinds.
const (
	Prep Kind = iota
	Conf
	Exec
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Prep:
		return "prep"
	case Conf:
		return "conf"
	case Exec:
		return "exec"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Digest abstracts a batch digest; 0 is "no digest".
type Digest int

// MsgType is an abstract protocol message type.
type MsgType int

// Abstract message types of the normal-operation subprotocol.
const (
	MPrePrepare MsgType = iota
	MPrepare
	MCommit
)

// Msg is an abstract protocol message: type, slot coordinates, digest, and
// the sending enclave (replica + kind implied by the type).
type Msg struct {
	Type   MsgType
	View   int
	Seq    int
	Digest Digest
	Sender int // replica index of the sending enclave
}

// Config parameterizes the model.
type Config struct {
	N, F int
	// Seqs and Digests bound the adversary's choice space. Views bounds
	// how many views the model explores; the default of 1 models normal
	// operation in a single view. Higher view numbers would require
	// modeling the NewView validation rules (a correct new primary only
	// re-proposes prepared digests); cross-view safety is exercised by the
	// messages-package NewView validation tests and the core integration
	// tests instead.
	Seqs    int
	Digests int
	Views   int
	// Byzantine[k] lists the replicas whose enclave of kind k is corrupt.
	Byzantine map[Kind][]int
	// Steps bounds the schedule length.
	Steps int
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 4
	}
	if c.F == 0 {
		c.F = (c.N - 1) / 3
	}
	if c.Seqs == 0 {
		c.Seqs = 3
	}
	if c.Digests == 0 {
		c.Digests = 3
	}
	if c.Views == 0 {
		c.Views = 1
	}
	if c.Steps == 0 {
		c.Steps = 4000
	}
	return c
}

// prepNode models a correct Preparation enclave: the primary proposes at
// most one digest per (view, seq); backups prepare the first PrePrepare
// they receive per (view, seq).
type prepNode struct {
	id       int
	accepted map[[2]int]Digest // (view,seq) -> digest proposed/prepared
}

// confNode models a correct Confirmation enclave: it commits (view, seq,
// digest) only on a full prepare certificate — one PrePrepare plus 2f
// Prepares from distinct Preparation enclaves.
type confNode struct {
	id         int
	prePrepare map[[2]int]Digest
	prepares   map[[3]int]map[int]bool // (view,seq,digest) -> senders
	committed  map[[2]int]Digest
}

// execNode models a correct Execution enclave: it decides a digest for a
// sequence number on 2f+1 matching Commits from distinct Confirmation
// enclaves.
type execNode struct {
	id      int
	commits map[[3]int]map[int]bool // (view,seq,digest) -> senders
	decided map[int]Digest          // seq -> digest
}

// World is one model instance: all correct nodes plus the record of every
// message correct nodes have sent (the adversary's delivery pool).
type World struct {
	cfg Config
	rng *rand.Rand

	preps []*prepNode
	confs []*confNode
	execs []*execNode

	// pool is every message available for delivery: everything sent by a
	// correct enclave plus everything the adversary forged from corrupt
	// ones.
	pool []Msg
	// sentByCorrect marks messages genuinely produced by correct enclaves
	// (for invariant I2's certificate accounting).
	byzantine map[Kind]map[int]bool
}

// NewWorld builds a model instance.
func NewWorld(cfg Config, seed int64) *World {
	cfg = cfg.withDefaults()
	w := &World{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		byzantine: map[Kind]map[int]bool{Prep: {}, Conf: {}, Exec: {}},
	}
	for kind, ids := range cfg.Byzantine {
		for _, id := range ids {
			w.byzantine[kind][id] = true
		}
	}
	for i := 0; i < cfg.N; i++ {
		w.preps = append(w.preps, &prepNode{id: i, accepted: make(map[[2]int]Digest)})
		w.confs = append(w.confs, &confNode{
			id:         i,
			prePrepare: make(map[[2]int]Digest),
			prepares:   make(map[[3]int]map[int]bool),
			committed:  make(map[[2]int]Digest),
		})
		w.execs = append(w.execs, &execNode{
			id:      i,
			commits: make(map[[3]int]map[int]bool),
			decided: make(map[int]Digest),
		})
	}
	return w
}

func (w *World) isByz(k Kind, id int) bool { return w.byzantine[k][id] }

func (w *World) primary(view int) int { return view % w.cfg.N }

// send appends a message to the delivery pool.
func (w *World) send(m Msg) { w.pool = append(w.pool, m) }

// Step performs one adversary-chosen action: inject a client proposal,
// deliver a pooled message to some node, or let a Byzantine enclave forge
// a message. Returns an invariant violation, or nil.
func (w *World) Step() error {
	switch w.rng.Intn(6) {
	case 0:
		w.adversaryPropose()
	case 1:
		w.adversaryForge()
	default:
		w.deliverRandom()
	}
	return w.CheckInvariants()
}

// Run executes the configured number of steps, stopping at the first
// violation.
func (w *World) Run() error {
	for i := 0; i < w.cfg.Steps; i++ {
		if err := w.Step(); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
	}
	return nil
}

// adversaryPropose makes a primary propose: correct primaries propose a
// fresh digest once per slot; Byzantine primaries equivocate freely (the
// forge action also covers them).
func (w *World) adversaryPropose() {
	view := w.rng.Intn(w.cfg.Views)
	seq := 1 + w.rng.Intn(w.cfg.Seqs)
	p := w.primary(view)
	digest := Digest(1 + w.rng.Intn(w.cfg.Digests))
	if w.isByz(Prep, p) {
		// Equivocation: propose any digest, even conflicting ones.
		w.send(Msg{Type: MPrePrepare, View: view, Seq: seq, Digest: digest, Sender: p})
		return
	}
	node := w.preps[p]
	key := [2]int{view, seq}
	if d, ok := node.accepted[key]; ok {
		digest = d // a correct primary never equivocates
	} else {
		node.accepted[key] = digest
	}
	w.send(Msg{Type: MPrePrepare, View: view, Seq: seq, Digest: digest, Sender: p})
}

// adversaryForge lets a Byzantine enclave emit an arbitrary protocol
// message of its compartment's type.
func (w *World) adversaryForge() {
	kind := Kind(w.rng.Intn(3))
	ids := w.cfg.Byzantine[kind]
	if len(ids) == 0 {
		return
	}
	id := ids[w.rng.Intn(len(ids))]
	m := Msg{
		View:   w.rng.Intn(w.cfg.Views),
		Seq:    1 + w.rng.Intn(w.cfg.Seqs),
		Digest: Digest(1 + w.rng.Intn(w.cfg.Digests)),
		Sender: id,
	}
	switch kind {
	case Prep:
		if w.rng.Intn(2) == 0 {
			m.Type = MPrePrepare
			// Only the primary's PrePrepares are accepted by correct
			// receivers; forging from a backup is wasted effort but the
			// adversary may try.
		} else {
			m.Type = MPrepare
		}
	case Conf:
		m.Type = MCommit
	case Exec:
		return // Execution enclaves send no agreement messages in this subprotocol
	}
	w.send(m)
}

// deliverRandom delivers one pooled message (possibly again — duplication
// is free) to one random correct node of the appropriate compartment.
func (w *World) deliverRandom() {
	if len(w.pool) == 0 {
		return
	}
	m := w.pool[w.rng.Intn(len(w.pool))]
	target := w.rng.Intn(w.cfg.N)
	switch m.Type {
	case MPrePrepare:
		// PrePrepares are duplicated to Preparation (backup), Confirmation
		// and Execution logs; deliver to one of them.
		switch w.rng.Intn(2) {
		case 0:
			w.deliverPrePrepareToPrep(target, m)
		case 1:
			w.deliverPrePrepareToConf(target, m)
		}
	case MPrepare:
		w.deliverPrepareToConf(target, m)
	case MCommit:
		w.deliverCommitToExec(target, m)
	}
}

func (w *World) deliverPrePrepareToPrep(target int, m Msg) {
	if w.isByz(Prep, target) || m.Sender != w.primary(m.View) || target == m.Sender {
		return
	}
	node := w.preps[target]
	key := [2]int{m.View, m.Seq}
	if _, ok := node.accepted[key]; ok {
		return // first proposal wins; equivocation is ignored
	}
	node.accepted[key] = m.Digest
	w.send(Msg{Type: MPrepare, View: m.View, Seq: m.Seq, Digest: m.Digest, Sender: target})
}

func (w *World) deliverPrePrepareToConf(target int, m Msg) {
	if w.isByz(Conf, target) || m.Sender != w.primary(m.View) {
		return
	}
	node := w.confs[target]
	key := [2]int{m.View, m.Seq}
	if _, ok := node.prePrepare[key]; ok {
		return
	}
	node.prePrepare[key] = m.Digest
	w.maybeCommit(node, m.View, m.Seq)
}

func (w *World) deliverPrepareToConf(target int, m Msg) {
	if w.isByz(Conf, target) || m.Sender == w.primary(m.View) {
		return
	}
	node := w.confs[target]
	key := [3]int{m.View, m.Seq, int(m.Digest)}
	set, ok := node.prepares[key]
	if !ok {
		set = make(map[int]bool)
		node.prepares[key] = set
	}
	set[m.Sender] = true
	w.maybeCommit(node, m.View, m.Seq)
}

// maybeCommit fires a correct Confirmation enclave's quorum rule.
func (w *World) maybeCommit(node *confNode, view, seq int) {
	slotKey := [2]int{view, seq}
	if _, done := node.committed[slotKey]; done {
		return
	}
	d, ok := node.prePrepare[slotKey]
	if !ok {
		return
	}
	set := node.prepares[[3]int{view, seq, int(d)}]
	if len(set) < 2*w.cfg.F {
		return
	}
	node.committed[slotKey] = d
	w.send(Msg{Type: MCommit, View: view, Seq: seq, Digest: d, Sender: node.id})
}

func (w *World) deliverCommitToExec(target int, m Msg) {
	if w.isByz(Exec, target) {
		return
	}
	node := w.execs[target]
	if _, done := node.decided[m.Seq]; done {
		return
	}
	key := [3]int{m.View, m.Seq, int(m.Digest)}
	set, ok := node.commits[key]
	if !ok {
		set = make(map[int]bool)
		node.commits[key] = set
	}
	set[m.Sender] = true
	if len(set) >= 2*w.cfg.F+1 {
		node.decided[m.Seq] = m.Digest
	}
}

// CheckInvariants asserts the safety properties over the current state.
func (w *World) CheckInvariants() error {
	// I1 — Agreement: no two correct Execution enclaves decide different
	// digests for the same sequence number.
	for seq := 0; seq <= w.cfg.Seqs; seq++ {
		var first Digest
		firstID := -1
		for _, e := range w.execs {
			if w.isByz(Exec, e.id) {
				continue
			}
			d, ok := e.decided[seq]
			if !ok {
				continue
			}
			if firstID == -1 {
				first, firstID = d, e.id
			} else if d != first {
				return fmt.Errorf("I1 violated: execs %d and %d decided digests %d and %d at seq %d",
					firstID, e.id, first, d, seq)
			}
		}
	}
	// I2 — Certificate uniqueness: for each (view, seq) there must not be
	// two conflicting prepare certificates, counting correct Preparation
	// enclaves' real Prepares plus up to f forged ones per certificate.
	for view := 0; view < w.cfg.Views; view++ {
		for seq := 1; seq <= w.cfg.Seqs; seq++ {
			certs := w.possibleCerts(view, seq)
			if len(certs) > 1 {
				return fmt.Errorf("I2 violated: conflicting prepare certificates %v at (v=%d,n=%d)",
					certs, view, seq)
			}
		}
	}
	return nil
}

// possibleCerts returns the set of digests for which a prepare certificate
// of (view, seq) could be assembled: PrePrepare from the primary (real or
// forged if the primary's prep is Byzantine) plus 2f Prepares, counting
// correct enclaves' actual sent Prepares and every Byzantine prep as a
// universal voter.
func (w *World) possibleCerts(view, seq int) []Digest {
	// Collect correct prepares per digest from the accepted maps (a
	// correct prep sends exactly its accepted digest for the slot).
	votes := make(map[Digest]map[int]bool)
	addVote := func(d Digest, id int) {
		set, ok := votes[d]
		if !ok {
			set = make(map[int]bool)
			votes[d] = set
		}
		set[id] = true
	}
	primary := w.primary(view)
	for _, p := range w.preps {
		if w.isByz(Prep, p.id) || p.id == primary {
			continue
		}
		if d, ok := p.accepted[[2]int{view, seq}]; ok {
			addVote(d, p.id)
		}
	}
	byzPreps := 0
	for id := range w.byzantine[Prep] {
		if id != primary {
			byzPreps++
		}
	}
	// A digest is certifiable if some PrePrepare for it could exist
	// (correct primary: only its accepted digest; Byzantine primary: any)
	// and correct votes + Byzantine votes reach 2f.
	proposable := func(d Digest) bool {
		if w.isByz(Prep, primary) {
			return true
		}
		acc, ok := w.preps[primary].accepted[[2]int{view, seq}]
		return ok && acc == d
	}
	var out []Digest
	for d := Digest(1); d <= Digest(w.cfg.Digests); d++ {
		if !proposable(d) {
			continue
		}
		if len(votes[d])+byzPreps >= 2*w.cfg.F {
			out = append(out, d)
		}
	}
	return out
}
