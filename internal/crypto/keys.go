// Package crypto provides the cryptographic substrate used by SplitBFT:
// ED25519 key pairs and signatures for inter-enclave and inter-replica
// authentication, HMAC-SHA256 authenticator vectors for client requests and
// replies, AES-GCM sessions for request/reply confidentiality, and SHA-256
// digests for protocol certificates.
//
// The placement of primitives mirrors the paper (§5): signatures between
// replicas/enclaves, HMACs between clients and replicas, and symmetric
// encryption end-to-end between a client and the Execution compartment.
package crypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DigestSize is the size in bytes of protocol digests (SHA-256).
const DigestSize = sha256.Size

// Digest is a SHA-256 hash used to identify requests, batches, and
// checkpoints throughout the protocol.
type Digest [DigestSize]byte

// String returns the first 8 hex characters of the digest, enough to
// disambiguate in logs without flooding them.
func (d Digest) String() string { return hex.EncodeToString(d[:4]) }

// IsZero reports whether the digest is the all-zero value.
func (d Digest) IsZero() bool { return d == Digest{} }

// HashData returns the SHA-256 digest of data.
func HashData(data []byte) Digest { return sha256.Sum256(data) }

// HashConcat hashes the concatenation of the given byte slices. It is used
// for multi-field digests (e.g. checkpoint state digests) where callers must
// take care that the field encoding is unambiguous.
func HashConcat(parts ...[]byte) Digest {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix every part so (a,bc) and (ab,c) hash differently.
		var lenBuf [8]byte
		n := len(p)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// KeyPair is an ED25519 signing key pair belonging to a single protocol
// participant (an enclave, a replica environment, or a client).
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh ED25519 key pair using the given entropy
// source. Pass nil to use crypto/rand.Reader.
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("generate ed25519 key: %w", err)
	}
	return &KeyPair{Public: pub, private: priv}, nil
}

// MustGenerateKeyPair is GenerateKeyPair with a panic on failure; it is
// intended for tests and example setup where entropy failure is fatal anyway.
func MustGenerateKeyPair() *KeyPair {
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		panic(err)
	}
	return kp
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify reports whether sig is a valid signature over msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// ErrUnknownSigner is returned by Registry lookups for identities that have
// not been registered.
var ErrUnknownSigner = errors.New("crypto: unknown signer identity")

// Identity names a protocol participant for key lookup. ReplicaID is the
// replica index (or client ID for Role=RoleClient); Role distinguishes the
// compartment types and the untrusted roles so that, per the fault model,
// each enclave has its own key pair.
type Identity struct {
	ReplicaID uint32
	Role      Role
}

// Role identifies which component of a replica (or a client) an identity and
// key pair belongs to.
type Role uint8

// Roles for every key-holding component in the system.
const (
	RoleClient Role = iota
	RoleEnvironment
	RolePreparation
	RoleConfirmation
	RoleExecution
	// RoleReplica is used by the non-compartmentalized PBFT baseline where
	// the whole replica is one unit of failure with one key.
	RoleReplica
	// RoleCounter is the trusted monotonic counter enclave used by the
	// trusted consensus mode; its key signs counter attestations only.
	RoleCounter
)

// String returns a short human-readable role name.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleEnvironment:
		return "env"
	case RolePreparation:
		return "prep"
	case RoleConfirmation:
		return "conf"
	case RoleExecution:
		return "exec"
	case RoleReplica:
		return "replica"
	case RoleCounter:
		return "counter"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Registry maps identities to public keys. It is safe for concurrent use;
// in a deployment it is populated during setup/attestation and read-only
// afterwards. Alongside the Ed25519 identity keys it carries the enclaves'
// X25519 keys, exchanged during the same attestation ceremony: they are
// what pairwise agreement-MAC keys are derived from (the attested-ECDH
// path of the MAC-authenticated fast path).
type Registry struct {
	mu       sync.RWMutex
	keys     map[Identity]ed25519.PublicKey
	ecdhKeys map[Identity][32]byte
	// ecdhEpoch counts ECDH registrations. Pairwise MAC keys derived from
	// these entries are cached in MACStores; the epoch lets those caches
	// detect a re-registration (a peer enclave restarted with fresh keys)
	// and re-derive instead of serving stale keys.
	ecdhEpoch atomic.Uint64
}

// NewRegistry returns an empty key registry.
func NewRegistry() *Registry {
	return &Registry{
		keys:     make(map[Identity]ed25519.PublicKey),
		ecdhKeys: make(map[Identity][32]byte),
	}
}

// Register stores the public key for id, replacing any previous key.
func (r *Registry) Register(id Identity, pub ed25519.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := make(ed25519.PublicKey, len(pub))
	copy(k, pub)
	r.keys[id] = k
}

// Lookup returns the public key registered for id.
func (r *Registry) Lookup(id Identity) (ed25519.PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.keys[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v/%v", ErrUnknownSigner, id.ReplicaID, id.Role)
	}
	return pub, nil
}

// VerifyFrom verifies sig over msg under the key registered for id.
func (r *Registry) VerifyFrom(id Identity, msg, sig []byte) error {
	pub, err := r.Lookup(id)
	if err != nil {
		return err
	}
	if !Verify(pub, msg, sig) {
		return fmt.Errorf("crypto: bad signature from %v/%v", id.ReplicaID, id.Role)
	}
	return nil
}

// Len returns the number of registered identities.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// RegisterECDH stores the X25519 public key for id, replacing any previous
// key and advancing the ECDH epoch so derived-key caches refresh.
func (r *Registry) RegisterECDH(id Identity, pub [32]byte) {
	r.mu.Lock()
	r.ecdhKeys[id] = pub
	r.mu.Unlock()
	r.ecdhEpoch.Add(1)
}

// LookupECDH returns the X25519 public key registered for id.
func (r *Registry) LookupECDH(id Identity) ([32]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.ecdhKeys[id]
	if !ok {
		return [32]byte{}, fmt.Errorf("%w: no ECDH key for %v/%v", ErrUnknownSigner, id.ReplicaID, id.Role)
	}
	return pub, nil
}

// ECDHEpoch returns the ECDH registration generation; it changes whenever
// RegisterECDH runs.
func (r *Registry) ECDHEpoch() uint64 { return r.ecdhEpoch.Load() }
