package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"io"
)

// KeyStream is a deterministic random stream derived from a seed and a
// label chain via HMAC-SHA256 in counter mode. It exists so multi-process
// deployments can derive identical enclave key pairs from a shared
// deployment secret — standing in for the attestation-plus-key-exchange
// ceremony a real SGX deployment performs (see cmd/splitbft-replica).
// It must never be used where unpredictability matters beyond the secrecy
// of the seed.
type KeyStream struct {
	key     []byte
	counter uint64
	buf     []byte
}

var _ io.Reader = (*KeyStream)(nil)

// NewKeyStream derives a stream from seed and labels. Distinct label
// chains yield independent streams.
func NewKeyStream(seed []byte, labels ...string) *KeyStream {
	h := hmac.New(sha256.New, seed)
	for _, l := range labels {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(l)))
		h.Write(n[:])
		h.Write([]byte(l))
	}
	return &KeyStream{key: h.Sum(nil)}
}

// Read implements io.Reader; it never fails.
func (s *KeyStream) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(s.buf) == 0 {
			h := hmac.New(sha256.New, s.key)
			var c [8]byte
			binary.LittleEndian.PutUint64(c[:], s.counter)
			s.counter++
			h.Write(c[:])
			s.buf = h.Sum(nil)
		}
		copied := copy(p[n:], s.buf)
		s.buf = s.buf[copied:]
		n += copied
	}
	return n, nil
}
