package crypto

import (
	"errors"
	"testing"
)

// TestDerivedMACStore: pairwise keys come from the derive callback, are
// cached, and the cache drops when the epoch moves (a peer re-registered
// fresh key material after a restart).
func TestDerivedMACStore(t *testing.T) {
	self := Identity{ReplicaID: 0, Role: RolePreparation}
	peer := Identity{ReplicaID: 1, Role: RoleConfirmation}
	derives := 0
	generation := byte(1)
	epoch := uint64(1)
	store := NewDerivedMACStore(self, func(p Identity) (MACKey, error) {
		if p != peer {
			return MACKey{}, errors.New("unknown peer")
		}
		derives++
		return MACKey{0: generation, 1: byte(p.ReplicaID)}, nil
	}, func() uint64 { return epoch })

	msg := []byte("m")
	mac1 := store.MAC(msg, peer)
	mac2 := store.MAC(msg, peer)
	if mac1 != mac2 {
		t.Fatal("derived MACs must be stable")
	}
	if derives != 1 {
		t.Fatalf("derive ran %d times, want 1 (cached)", derives)
	}
	if err := store.VerifySingle(msg, mac1, peer); err != nil {
		t.Fatalf("self-consistent verify failed: %v", err)
	}

	// Epoch move: the peer restarted with new keys — cached pairwise keys
	// must be re-derived, and MACs under the old key must stop verifying.
	generation = 2
	epoch = 2
	if err := store.VerifySingle(msg, mac1, peer); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("stale-key MAC still accepted after epoch move: %v", err)
	}
	if derives != 2 {
		t.Fatalf("derive ran %d times after epoch move, want 2", derives)
	}

	// Unknown peers: sends degrade to zero MACs (liveness only), verifies
	// report the failure.
	other := Identity{ReplicaID: 2, Role: RoleExecution}
	auth := store.Authenticate(msg, []Identity{peer, other})
	if auth.MACs[1] != ([MACSize]byte{}) {
		t.Fatal("underivable receiver should get a zero MAC")
	}
	if err := store.VerifySingle(msg, auth.MACs[0], other); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("verify against underivable sender must fail: %v", err)
	}
}
