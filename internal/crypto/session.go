package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// SessionKeySize is the size of an AES-256-GCM session key in bytes.
const SessionKeySize = 32

// ErrDecrypt is returned when a ciphertext fails authentication or
// decryption.
var ErrDecrypt = errors.New("crypto: session decryption failed")

// SessionKey is a symmetric key a client provisions into the Execution
// enclave after attestation. All request payloads and replies between that
// client and the Execution compartments are encrypted under it, so the
// untrusted environment, the network, and the other compartments only ever
// see ciphertext (opportunity o3 in the paper).
type SessionKey [SessionKeySize]byte

// NewSessionKey draws a fresh random session key.
func NewSessionKey() (SessionKey, error) {
	var k SessionKey
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return SessionKey{}, fmt.Errorf("generate session key: %w", err)
	}
	return k, nil
}

// Session encrypts and decrypts payloads under a session key using
// AES-256-GCM with a counter nonce. A Session is safe for concurrent
// encryption because the nonce counter is atomic; decryption is stateless.
type Session struct {
	aead    cipher.AEAD
	nonceHi uint32 // random per-session salt to avoid cross-session reuse
	counter atomic.Uint64
}

// NewSession builds a Session from key. The direction byte separates client
// and enclave nonce spaces: both sides hold the same key, so they must never
// use overlapping nonces. Use distinct direction values on the two ends.
func NewSession(key SessionKey, direction byte) (*Session, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("session cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("session GCM: %w", err)
	}
	return &Session{aead: aead, nonceHi: uint32(direction)}, nil
}

// Seal encrypts plaintext with associated data ad and returns
// nonce||ciphertext.
func (s *Session) Seal(plaintext, ad []byte) []byte {
	n := s.counter.Add(1)
	nonce := make([]byte, s.aead.NonceSize())
	binary.LittleEndian.PutUint32(nonce[0:4], s.nonceHi)
	binary.LittleEndian.PutUint64(nonce[4:12], n)
	out := make([]byte, 0, len(nonce)+len(plaintext)+s.aead.Overhead())
	out = append(out, nonce...)
	return s.aead.Seal(out, nonce, plaintext, ad)
}

// SealRandom encrypts like Seal but under a fresh random nonce instead of
// the session counter. It is the sealing primitive for data that must stay
// decryptable across process restarts (durable storage): a restarted
// process would reset the counter to zero and reuse nonces, which
// catastrophically breaks GCM. Open decrypts both forms.
func (s *Session) SealRandom(plaintext, ad []byte) ([]byte, error) {
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("seal nonce: %w", err)
	}
	out := make([]byte, 0, len(nonce)+len(plaintext)+s.aead.Overhead())
	out = append(out, nonce...)
	return s.aead.Seal(out, nonce, plaintext, ad), nil
}

// Counter returns the number of counter-nonce seals performed so far. It
// is exported so sealed state snapshots can persist the nonce position.
func (s *Session) Counter() uint64 { return s.counter.Load() }

// SetCounter moves the nonce counter, used when restoring a session from
// sealed state: the restored counter must never fall below any value the
// pre-crash session may have used.
func (s *Session) SetCounter(v uint64) { s.counter.Store(v) }

// Open decrypts a Seal output, verifying the associated data.
func (s *Session) Open(sealed, ad []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	if len(sealed) < ns+s.aead.Overhead() {
		return nil, fmt.Errorf("%w: ciphertext too short (%d bytes)", ErrDecrypt, len(sealed))
	}
	pt, err := s.aead.Open(nil, sealed[:ns], sealed[ns:], ad)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return pt, nil
}

// Overhead returns the total ciphertext expansion of Seal (nonce + tag).
func (s *Session) Overhead() int { return s.aead.NonceSize() + s.aead.Overhead() }
