package crypto

import "encoding/binary"

// CounterSigningBytes is the canonical byte layout a trusted-counter
// attestation signs: the owning replica, the assigned counter value, and
// the digest the value is bound to. It lives here because both the counter
// enclave (internal/tee) and the message verifier (internal/messages) must
// produce identical bytes, and tee already imports messages.
func CounterSigningBytes(replica uint32, value uint64, digest Digest) []byte {
	buf := make([]byte, 0, 4+8+DigestSize)
	buf = binary.LittleEndian.AppendUint32(buf, replica)
	buf = binary.LittleEndian.AppendUint64(buf, value)
	return append(buf, digest[:]...)
}
