package crypto

import "encoding/binary"

// CounterSigningBytes is the canonical byte layout a trusted-counter
// attestation signs: the owning replica, the assigned counter value, and
// the digest the value is bound to. It lives here because both the counter
// enclave (internal/tee) and the message verifier (internal/messages) must
// produce identical bytes, and tee already imports messages.
func CounterSigningBytes(replica uint32, value uint64, digest Digest) []byte {
	buf := make([]byte, 0, 4+8+DigestSize)
	buf = binary.LittleEndian.AppendUint32(buf, replica)
	buf = binary.LittleEndian.AppendUint64(buf, value)
	return append(buf, digest[:]...)
}

// leaseSigningTag domain-separates read-lease grants from counter
// attestations (no leading tag) and from the certificate-vouch tags
// (0xF1/0xF2) that share the signing keyspace.
const leaseSigningTag = 0xF3

// LeaseSigningBytes is the canonical byte layout a read-lease grant signs:
// the granting replica (the primary owning the counter), the lease-holding
// replica, the view the lease is valid in, the primary's proposal frontier
// at grant time, the counter value at grant time, the wall-clock expiry
// (UnixNano), and the probe flag (a probe grant is acknowledged but never
// installed, so the flag must be unforgeable — flipping it would turn a
// reachability probe into a servable lease). Signed under the granter's
// RoleCounter key, so a lease carries the same trust anchor as a counter
// attestation and is revoked by the same view-change machinery.
func LeaseSigningBytes(granter, holder uint32, view, anchorSeq, ctrVal uint64, expiry int64, probe bool) []byte {
	buf := make([]byte, 0, 1+4+4+8+8+8+8+1)
	buf = append(buf, leaseSigningTag)
	buf = binary.LittleEndian.AppendUint32(buf, granter)
	buf = binary.LittleEndian.AppendUint32(buf, holder)
	buf = binary.LittleEndian.AppendUint64(buf, view)
	buf = binary.LittleEndian.AppendUint64(buf, anchorSeq)
	buf = binary.LittleEndian.AppendUint64(buf, ctrVal)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(expiry))
	if probe {
		return append(buf, 1)
	}
	return append(buf, 0)
}
