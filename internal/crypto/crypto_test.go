package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHashConcatUnambiguous(t *testing.T) {
	a := HashConcat([]byte("a"), []byte("bc"))
	b := HashConcat([]byte("ab"), []byte("c"))
	if a == b {
		t.Fatal("HashConcat must length-prefix parts: (a,bc) == (ab,c)")
	}
	if HashConcat([]byte("a"), []byte("bc")) != a {
		t.Fatal("HashConcat not deterministic")
	}
}

func TestHashDataMatchesConcatSingle(t *testing.T) {
	if HashData([]byte("x")) == HashConcat([]byte("x")) {
		t.Fatal("HashData and HashConcat should differ (length framing)")
	}
}

func TestDigestString(t *testing.T) {
	var d Digest
	if !d.IsZero() {
		t.Fatal("zero digest should report IsZero")
	}
	d[0] = 0xab
	if d.IsZero() {
		t.Fatal("non-zero digest reported IsZero")
	}
	if got := d.String(); len(got) != 8 {
		t.Fatalf("String() = %q, want 8 hex chars", got)
	}
}

func TestSignVerify(t *testing.T) {
	kp := MustGenerateKeyPair()
	msg := []byte("hello splitbft")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	sig[0] ^= 0xff
	if Verify(kp.Public, msg, sig) {
		t.Fatal("corrupted signature accepted")
	}
	sig[0] ^= 0xff
	if Verify(kp.Public, append(msg, 'x'), sig) {
		t.Fatal("signature over different message accepted")
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	kp := MustGenerateKeyPair()
	if Verify(kp.Public[:16], []byte("m"), make([]byte, 64)) {
		t.Fatal("short public key accepted")
	}
	if Verify(kp.Public, []byte("m"), make([]byte, 10)) {
		t.Fatal("short signature accepted")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	kp := MustGenerateKeyPair()
	id := Identity{ReplicaID: 2, Role: RolePreparation}
	if _, err := reg.Lookup(id); err == nil {
		t.Fatal("lookup of unregistered identity succeeded")
	}
	reg.Register(id, kp.Public)
	pub, err := reg.Lookup(id)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if !bytes.Equal(pub, kp.Public) {
		t.Fatal("registry returned wrong key")
	}
	msg := []byte("msg")
	if err := reg.VerifyFrom(id, msg, kp.Sign(msg)); err != nil {
		t.Fatalf("VerifyFrom valid: %v", err)
	}
	other := MustGenerateKeyPair()
	if err := reg.VerifyFrom(id, msg, other.Sign(msg)); err == nil {
		t.Fatal("VerifyFrom accepted signature under wrong key")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", reg.Len())
	}
}

func TestMACStorePairwiseSymmetry(t *testing.T) {
	secret := []byte("system-secret")
	client := Identity{ReplicaID: 7, Role: RoleClient}
	exec := Identity{ReplicaID: 1, Role: RoleExecution}
	cs := NewMACStore(secret, client)
	es := NewMACStore(secret, exec)

	msg := []byte("request payload")
	mac := cs.MAC(msg, exec)
	if err := es.VerifySingle(msg, mac, client); err != nil {
		t.Fatalf("symmetric key mismatch: %v", err)
	}
	// The reverse direction must use the same key.
	back := es.MAC(msg, client)
	if err := cs.VerifySingle(msg, back, exec); err != nil {
		t.Fatalf("reverse direction: %v", err)
	}
}

func TestMACAuthenticatorVector(t *testing.T) {
	secret := []byte("s")
	client := Identity{ReplicaID: 0, Role: RoleClient}
	cs := NewMACStore(secret, client)
	receivers := []Identity{
		{ReplicaID: 0, Role: RoleExecution},
		{ReplicaID: 1, Role: RoleExecution},
		{ReplicaID: 2, Role: RoleExecution},
	}
	msg := []byte("op")
	auth := cs.Authenticate(msg, receivers)
	if len(auth.MACs) != 3 {
		t.Fatalf("authenticator has %d MACs, want 3", len(auth.MACs))
	}
	for i, r := range receivers {
		rs := NewMACStore(secret, r)
		if err := rs.VerifyIndexed(msg, auth, i, client); err != nil {
			t.Fatalf("receiver %d: %v", i, err)
		}
		// A replica must not be able to verify with another replica's slot.
		wrong := (i + 1) % 3
		if err := rs.VerifyIndexed(msg, auth, wrong, client); err == nil {
			t.Fatalf("receiver %d accepted MAC for slot %d", i, wrong)
		}
	}
	if err := NewMACStore(secret, receivers[0]).VerifyIndexed(msg, auth, 99, client); err == nil {
		t.Fatal("out-of-range authenticator index accepted")
	}
}

func TestMACDistinctKeysPerPair(t *testing.T) {
	secret := []byte("s")
	a := NewMACKey(secret, Identity{0, RoleClient}, Identity{1, RoleExecution})
	b := NewMACKey(secret, Identity{0, RoleClient}, Identity{2, RoleExecution})
	c := NewMACKey(secret, Identity{0, RoleClient}, Identity{1, RolePreparation})
	if a == b || a == c || b == c {
		t.Fatal("pairwise MAC keys must differ per peer identity")
	}
}

func TestSessionRoundTrip(t *testing.T) {
	key, err := NewSessionKey()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewSession(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewSession(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("PUT k v")
	ad := []byte("client-7-seq-3")
	ct := cli.Seal(pt, ad)
	if bytes.Contains(ct, pt) {
		t.Fatal("ciphertext contains plaintext")
	}
	got, err := srv.Open(ct, ad)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %q, want %q", got, pt)
	}
}

func TestSessionRejectsTampering(t *testing.T) {
	key, _ := NewSessionKey()
	cli, _ := NewSession(key, 0)
	srv, _ := NewSession(key, 1)
	ct := cli.Seal([]byte("secret"), []byte("ad"))
	ct[len(ct)-1] ^= 1
	if _, err := srv.Open(ct, []byte("ad")); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
	ct[len(ct)-1] ^= 1
	if _, err := srv.Open(ct, []byte("other-ad")); err == nil {
		t.Fatal("wrong associated data accepted")
	}
	if _, err := srv.Open(ct[:4], []byte("ad")); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestSessionNonceUniqueness(t *testing.T) {
	key, _ := NewSessionKey()
	s, _ := NewSession(key, 0)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		ct := s.Seal([]byte("m"), nil)
		nonce := string(ct[:12])
		if seen[nonce] {
			t.Fatal("nonce reused")
		}
		seen[nonce] = true
	}
}

func TestSessionDirectionsDoNotCollide(t *testing.T) {
	key, _ := NewSessionKey()
	a, _ := NewSession(key, 0)
	b, _ := NewSession(key, 1)
	ca := a.Seal([]byte("m"), nil)
	cb := b.Seal([]byte("m"), nil)
	if bytes.Equal(ca[:12], cb[:12]) {
		t.Fatal("two directions produced the same nonce")
	}
}

func TestQuickSessionRoundTrip(t *testing.T) {
	key, _ := NewSessionKey()
	enc, _ := NewSession(key, 0)
	dec, _ := NewSession(key, 1)
	f := func(pt, ad []byte) bool {
		ct := enc.Seal(pt, ad)
		got, err := dec.Open(ct, ad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMACRoundTrip(t *testing.T) {
	secret := []byte("quick-secret")
	a := NewMACStore(secret, Identity{1, RoleClient})
	b := NewMACStore(secret, Identity{2, RoleExecution})
	f := func(msg []byte) bool {
		mac := a.MAC(msg, b.Self())
		return b.VerifySingle(msg, mac, a.Self()) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignaturesNotForgeable(t *testing.T) {
	kp := MustGenerateKeyPair()
	f := func(msg []byte, flip uint8) bool {
		sig := kp.Sign(msg)
		if !Verify(kp.Public, msg, sig) {
			return false
		}
		sig[int(flip)%len(sig)] ^= 0x01
		return !Verify(kp.Public, msg, sig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSign(b *testing.B) {
	kp := MustGenerateKeyPair()
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kp.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := MustGenerateKeyPair()
	msg := make([]byte, 256)
	sig := kp.Sign(msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Verify(kp.Public, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkMAC(b *testing.B) {
	s := NewMACStore([]byte("s"), Identity{0, RoleClient})
	peer := Identity{1, RoleExecution}
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.MAC(msg, peer)
	}
}

func BenchmarkSessionSeal(b *testing.B) {
	key, _ := NewSessionKey()
	s, _ := NewSession(key, 0)
	pt := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seal(pt, nil)
	}
}
