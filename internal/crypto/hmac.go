package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// MACSize is the size in bytes of a single HMAC-SHA256 authenticator.
const MACSize = sha256.Size

// ErrBadMAC is returned when an authenticator fails verification.
var ErrBadMAC = errors.New("crypto: HMAC verification failed")

// MACKey is a shared symmetric key between two parties used for HMAC-SHA256
// authenticators. The paper uses HMAC-SHA2 between clients and replicas.
type MACKey [32]byte

// NewMACKey derives a deterministic pairwise key from two identities and a
// system secret. In a real deployment this would come from a key exchange
// during session setup; deriving deterministically keeps test setup simple
// while preserving the property that each (client, enclave) pair has a
// distinct key.
func NewMACKey(secret []byte, a, b Identity) MACKey {
	h := hmac.New(sha256.New, secret)
	var buf [10]byte
	binary.LittleEndian.PutUint32(buf[0:4], a.ReplicaID)
	buf[4] = byte(a.Role)
	binary.LittleEndian.PutUint32(buf[5:9], b.ReplicaID)
	buf[9] = byte(b.Role)
	h.Write(buf[:])
	var k MACKey
	copy(k[:], h.Sum(nil))
	return k
}

// ComputeMAC returns the HMAC-SHA256 of msg under key.
func ComputeMAC(key MACKey, msg []byte) [MACSize]byte {
	h := hmac.New(sha256.New, key[:])
	h.Write(msg)
	var out [MACSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// VerifyMAC reports whether mac is the HMAC-SHA256 of msg under key, in
// constant time.
func VerifyMAC(key MACKey, msg []byte, mac [MACSize]byte) bool {
	want := ComputeMAC(key, msg)
	return hmac.Equal(want[:], mac[:])
}

// Authenticator is a vector of per-receiver MACs, as used by PBFT for client
// requests: the sender computes one MAC per replica so each replica can
// verify the request with its own shared key.
type Authenticator struct {
	// MACs[i] authenticates the message to replica i.
	MACs [][MACSize]byte
}

// MACStore holds the pairwise MAC keys known to one participant. It is safe
// for concurrent use. Keys come from one of two sources: a shared system
// secret (NewMACStore — the client/replica keys the paper derives during
// session setup) or a per-pair derivation function (NewDerivedMACStore —
// the attested-ECDH path used for replica-to-replica agreement MACs, where
// each enclave pair computes its key from an X25519 exchange and no shared
// secret ever exists).
type MACStore struct {
	self   Identity
	secret []byte
	// derive, when set, replaces the secret-based derivation. epoch guards
	// the cache: when it moves (a peer re-registered fresh ECDH keys after
	// a restart), cached pairwise keys are discarded and re-derived.
	derive func(peer Identity) (MACKey, error)
	epoch  func() uint64

	mu          sync.RWMutex
	cache       map[Identity]MACKey
	cachedEpoch uint64
}

// NewMACStore creates a MAC store for participant self. All stores built
// from the same system secret agree on pairwise keys.
func NewMACStore(secret []byte, self Identity) *MACStore {
	s := make([]byte, len(secret))
	copy(s, secret)
	return &MACStore{self: self, secret: s, cache: make(map[Identity]MACKey)}
}

// NewDerivedMACStore creates a MAC store whose pairwise keys come from
// derive — typically an attested-ECDH exchange between enclaves — instead
// of a shared secret. derive must be symmetric: both ends of a pair must
// arrive at the same key. epoch, when non-nil, invalidates the key cache
// whenever its value changes (peers re-registering after a restart).
func NewDerivedMACStore(self Identity, derive func(peer Identity) (MACKey, error), epoch func() uint64) *MACStore {
	return &MACStore{self: self, derive: derive, epoch: epoch, cache: make(map[Identity]MACKey)}
}

// Self returns the identity this store authenticates as.
func (m *MACStore) Self() Identity { return m.self }

// keyFor returns (caching) the pairwise key between self and peer. Keys are
// symmetric: keyFor(a→b) == keyFor(b→a). It fails only for derived stores
// whose peer key material is not (yet) registered.
func (m *MACStore) keyFor(peer Identity) (MACKey, error) {
	var ep uint64
	if m.epoch != nil {
		ep = m.epoch()
	}
	m.mu.RLock()
	k, ok := m.cache[peer]
	stale := m.cachedEpoch != ep
	m.mu.RUnlock()
	if ok && !stale {
		return k, nil
	}
	var err error
	if m.derive != nil {
		k, err = m.derive(peer)
		if err != nil {
			return MACKey{}, err
		}
	} else {
		// Normalize the pair ordering so both directions derive the same key.
		a, b := m.self, peer
		if less(b, a) {
			a, b = b, a
		}
		k = NewMACKey(m.secret, a, b)
	}
	m.mu.Lock()
	if m.cachedEpoch != ep {
		m.cache = make(map[Identity]MACKey)
		m.cachedEpoch = ep
	}
	m.cache[peer] = k
	m.mu.Unlock()
	return k, nil
}

func less(a, b Identity) bool {
	if a.ReplicaID != b.ReplicaID {
		return a.ReplicaID < b.ReplicaID
	}
	return a.Role < b.Role
}

// Authenticate computes the authenticator vector over msg for the given
// receivers, in order. A receiver whose pairwise key cannot be derived
// (derived stores only; a deployment wiring gap) gets a zero MAC: that
// receiver will reject the message — a liveness loss on a misconfigured
// pair, never a safety one.
func (m *MACStore) Authenticate(msg []byte, receivers []Identity) Authenticator {
	auth := Authenticator{MACs: make([][MACSize]byte, len(receivers))}
	for i, r := range receivers {
		k, err := m.keyFor(r)
		if err != nil {
			continue
		}
		auth.MACs[i] = ComputeMAC(k, msg)
	}
	return auth
}

// MAC computes a single MAC over msg for one receiver (zero on a derived
// store whose pairwise key is unavailable; see Authenticate).
func (m *MACStore) MAC(msg []byte, receiver Identity) [MACSize]byte {
	k, err := m.keyFor(receiver)
	if err != nil {
		return [MACSize]byte{}
	}
	return ComputeMAC(k, msg)
}

// VerifyIndexed verifies the idx-th MAC of the authenticator as coming from
// sender and addressed to self.
func (m *MACStore) VerifyIndexed(msg []byte, auth Authenticator, idx int, sender Identity) error {
	if idx < 0 || idx >= len(auth.MACs) {
		return fmt.Errorf("%w: authenticator index %d out of range %d", ErrBadMAC, idx, len(auth.MACs))
	}
	k, err := m.keyFor(sender)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadMAC, err)
	}
	if !VerifyMAC(k, msg, auth.MACs[idx]) {
		return fmt.Errorf("%w: from %v/%v", ErrBadMAC, sender.ReplicaID, sender.Role)
	}
	return nil
}

// VerifySingle verifies a single MAC from sender over msg.
func (m *MACStore) VerifySingle(msg []byte, mac [MACSize]byte, sender Identity) error {
	k, err := m.keyFor(sender)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadMAC, err)
	}
	if !VerifyMAC(k, msg, mac) {
		return fmt.Errorf("%w: from %v/%v", ErrBadMAC, sender.ReplicaID, sender.Role)
	}
	return nil
}
